package gen

import (
	"fmt"
	"sort"
	"strings"

	"logparse/internal/core"
)

// FullSize is the line count of each dataset in Table I. Experiments scale
// these down with a factor on small machines; the generators accept any n.
var FullSize = map[string]int{
	"BGL":       4747963,
	"HPC":       433490,
	"Proxifier": 10108,
	"HDFS":      11175629,
	"Zookeeper": 74380,

	// Extended (non-paper) catalogues, at their loghub collection sizes.
	"Hadoop":      394308,
	"Spark":       33236604,
	"Thunderbird": 211212192,
}

// FullHDFSSessions is the paper's number of block operation requests.
const FullHDFSSessions = 575061

// FullHDFSAnomalies is the paper's number of labelled anomalies.
const FullHDFSAnomalies = 16838

// Names lists the datasets in the paper's presentation order. Frozen at the
// paper's five systems: experiment sweeps, goldens and Table I all iterate
// this list, so new catalogues go in ExtraNames instead.
var Names = []string{"BGL", "HPC", "Proxifier", "HDFS", "Zookeeper"}

// ExtraNames lists catalogues beyond the paper's five — loghub-style systems
// added for the online-parser conformance suite. ByName resolves them like
// any other dataset, but the paper experiments never sweep them.
var ExtraNames = []string{"Hadoop", "Spark", "Thunderbird"}

// AllNames returns the paper datasets followed by the extras.
func AllNames() []string {
	return append(append([]string(nil), Names...), ExtraNames...)
}

// ByName returns the catalogue for a dataset name (case-insensitive).
func ByName(name string) (*Catalog, error) {
	switch strings.ToLower(name) {
	case "bgl":
		return BGL(), nil
	case "hpc":
		return HPC(), nil
	case "proxifier":
		return Proxifier(), nil
	case "hdfs":
		return HDFS(), nil
	case "zookeeper":
		return Zookeeper(), nil
	case "hadoop":
		return Hadoop(), nil
	case "spark":
		return Spark(), nil
	case "thunderbird":
		return Thunderbird(), nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q (want one of %s)",
			name, strings.Join(AllNames(), ", "))
	}
}

// Summary is one row of Table I.
type Summary struct {
	System    string
	NumLogs   int
	MinLength int
	MaxLength int
	NumEvents int
}

// Summarize produces the Table I row for a dataset at its full size.
func Summarize(name string) (Summary, error) {
	c, err := ByName(name)
	if err != nil {
		return Summary{}, err
	}
	lo, hi := c.LengthRange()
	return Summary{
		System:    c.Name,
		NumLogs:   FullSize[c.Name],
		MinLength: lo,
		MaxLength: hi,
		NumEvents: c.NumEvents(),
	}, nil
}

// DistinctEvents counts the distinct ground-truth events present in a
// sample — the paper notes a 400-line BGL sample carries ~60 of the 376
// events while 40k lines carry ~206.
func DistinctEvents(msgs []core.LogMessage) int {
	seen := make(map[string]bool)
	for _, m := range msgs {
		seen[m.TruthID] = true
	}
	return len(seen)
}

// TruthClusters groups message indices by ground-truth event, sorted by
// descending cluster size; used by evaluation and by the ground-truth
// parser in RQ3.
func TruthClusters(msgs []core.LogMessage) map[string][]int {
	clusters := make(map[string][]int)
	for i, m := range msgs {
		clusters[m.TruthID] = append(clusters[m.TruthID], i)
	}
	return clusters
}

// TruthResult builds the "exactly correct parsed result" used as the Table
// III ground-truth row: one template per ground-truth event, every message
// assigned to its true event.
func TruthResult(msgs []core.LogMessage) *core.ParseResult {
	clusters := TruthClusters(msgs)
	ids := make([]string, 0, len(clusters))
	for id := range clusters {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	res := &core.ParseResult{
		Templates:  make([]core.Template, len(ids)),
		Assignment: make([]int, len(msgs)),
	}
	for t, id := range ids {
		seqs := make([][]string, 0, len(clusters[id]))
		for _, idx := range clusters[id] {
			seqs = append(seqs, msgs[idx].Tokens)
		}
		res.Templates[t] = core.Template{ID: id, Tokens: core.TemplateFromCluster(seqs)}
		for _, idx := range clusters[id] {
			res.Assignment[idx] = t
		}
	}
	return res
}
