// Package gen synthesises the five evaluation datasets of He et al. (DSN
// 2016): BGL, HPC, HDFS, Zookeeper and Proxifier. The paper's datasets are
// production logs that are not redistributable; each generator here
// reproduces the statistical structure the parsers are sensitive to — the
// event count and message-length range of Table I, Zipf-skewed template
// popularity, and realistic variable fields (IPs, block IDs, core IDs,
// paths, hex words) — while emitting exact ground-truth labels.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Field enumerates the kinds of variable slots a template can carry. Field
// kinds matter because they determine token cardinality, which drives parser
// behaviour (e.g. BGL's "generating core.*" events defeat LKE's distance
// metric because every occurrence differs in one high-cardinality token).
type Field int

// Field kinds.
const (
	FieldInt      Field = iota + 1 // bare integer, e.g. 42
	FieldBigInt                    // wide integer, e.g. 904791815409399662
	FieldIP                        // IPv4 with port, e.g. /10.251.43.210:50010
	FieldIPBare                    // IPv4 without port
	FieldBlockID                   // HDFS block, e.g. blk_904791815409399662
	FieldCoreID                    // BGL core file, e.g. core.2275
	FieldPath                      // slash path
	FieldHex                       // hex word, e.g. 0x0b85eee0
	FieldFloat                     // decimal, e.g. 3.75
	FieldNode                      // node name, e.g. node-218
	FieldUser                      // user name
	FieldDuration                  // duration, e.g. 135ms
	FieldSize                      // byte size, e.g. 67108864
	FieldWord                      // random lowercase word (free-text-ish)
	FieldExc                       // Java-style exception class
	FieldZxid                      // Zookeeper transaction id, e.g. 0x1700000fd2
	FieldSession                   // Zookeeper session id, e.g. 0x14ede63a5a70001
	FieldProg                      // Windows program name, e.g. chrome.exe
	FieldHost                      // host:port, e.g. proxy.cse.cuhk.edu.hk:5070
	FieldIPSrc                     // pool IPv4 with ephemeral port
	FieldRIdx                      // small replica/responder index, e.g. 0..2
)

// ipPool is the 203-node cluster address pool, matching the 203-node EC2
// cluster of Xu et al. on which the paper's HDFS log was collected.
var ipPool = func() []string {
	ips := make([]string, 203)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.251.%d.%d", 30+i/16, 10+13*(i%16))
	}
	return ips
}()

var fieldNames = map[string]Field{
	"int":  FieldInt,
	"big":  FieldBigInt,
	"ip":   FieldIP,
	"ipb":  FieldIPBare,
	"blk":  FieldBlockID,
	"core": FieldCoreID,
	"path": FieldPath,
	"hex":  FieldHex,
	"flt":  FieldFloat,
	"node": FieldNode,
	"user": FieldUser,
	"dur":  FieldDuration,
	"size": FieldSize,
	"word": FieldWord,
	"exc":  FieldExc,
	"zxid": FieldZxid,
	"sess": FieldSession,
	"prog": FieldProg,
	"host": FieldHost,
	"ips":  FieldIPSrc,
	"ridx": FieldRIdx,
}

var progNames = []string{
	"chrome.exe", "firefox.exe", "outlook.exe", "telegram.exe",
	"thunderbird.exe", "dropbox.exe", "skype.exe", "putty.exe",
	"svchost.exe", "ssh.exe",
}

var hostNames = []string{
	"proxy.cse.cuhk.edu.hk", "www.google.com", "ssl.gstatic.com",
	"mail.cse.cuhk.edu.hk", "clients4.google.com", "github.com",
	"update.microsoft.com", "cdn.jsdelivr.net",
}

var excClasses = []string{
	"java.io.IOException: Connection reset by peer",
	"java.io.IOException: Could not read from stream",
	"java.io.InterruptedIOException: Interruped while waiting for IO on channel",
	"java.io.EOFException: while trying to read 65557 bytes",
	"java.net.SocketTimeoutException: 480000 millis timeout while waiting for channel",
	"java.io.IOException: Broken pipe",
}

var userNames = []string{"root", "hdfs", "hadoop", "alice", "bob", "svc-etl", "mapred", "yarn"}

var wordBank = []string{
	"request", "packet", "socket", "channel", "buffer", "queue", "thread",
	"worker", "handler", "stream", "segment", "shard", "replica", "quorum",
	"leader", "follower", "snapshot", "journal", "epoch", "heartbeat",
	"timeout", "retry", "lease", "token", "cache", "region", "volume",
	"device", "sector", "fabric", "link", "port", "lane", "interrupt",
}

// renderField draws a concrete value for a field kind.
func renderField(f Field, rng *rand.Rand) string {
	switch f {
	case FieldInt:
		return strconv.Itoa(rng.Intn(100000))
	case FieldBigInt:
		return strconv.FormatInt(rng.Int63(), 10)
	case FieldIP:
		// Datanode address: a finite 203-node pool with the fixed HDFS
		// datanode port. Finite pools matter: node addresses recur often
		// enough to count as "frequent words" for SLCT, which is how
		// parsing errors on critical events arise (Finding 6).
		return "/" + ipPool[rng.Intn(len(ipPool))] + ":50010"
	case FieldIPSrc:
		// Client-side address: pool IP with an ephemeral port.
		return fmt.Sprintf("/%s:%d", ipPool[rng.Intn(len(ipPool))], 40000+rng.Intn(20000))
	case FieldIPBare:
		return ipPool[rng.Intn(len(ipPool))]
	case FieldBlockID:
		v := rng.Int63()
		if rng.Intn(2) == 0 {
			return "blk_-" + strconv.FormatInt(v, 10)
		}
		return "blk_" + strconv.FormatInt(v, 10)
	case FieldCoreID:
		return "core." + strconv.Itoa(rng.Intn(4096))
	case FieldPath:
		return fmt.Sprintf("/user/%s/job_%d/task_%09d_%04d/part-%05d",
			userNames[rng.Intn(len(userNames))], rng.Intn(1000), rng.Int63n(1e9), rng.Intn(10000), rng.Intn(100))
	case FieldHex:
		return fmt.Sprintf("0x%08x", rng.Uint32())
	case FieldFloat:
		return strconv.FormatFloat(float64(rng.Intn(100000))/100.0, 'f', 2, 64)
	case FieldNode:
		return fmt.Sprintf("node-%d", rng.Intn(1024))
	case FieldUser:
		return userNames[rng.Intn(len(userNames))]
	case FieldDuration:
		return strconv.Itoa(rng.Intn(10000)) + "ms"
	case FieldSize:
		// Real HDFS blocks are overwhelmingly the full 64 MB; partial tail
		// blocks carry arbitrary sizes.
		if rng.Float64() < 0.85 {
			return "67108864"
		}
		return strconv.Itoa(rng.Intn(1 << 26))
	case FieldWord:
		return wordBank[rng.Intn(len(wordBank))]
	case FieldExc:
		return excClasses[rng.Intn(len(excClasses))]
	case FieldZxid:
		return fmt.Sprintf("0x%x", rng.Int63n(1<<40))
	case FieldSession:
		return fmt.Sprintf("0x%x", rng.Int63())
	case FieldRIdx:
		// Replica/responder indices are tiny and heavily repeated —
		// "PacketResponder 0/1/2" are distinct frequent words to SLCT,
		// one of the critical-event parsing-error sources of Finding 6.
		return strconv.Itoa(rng.Intn(3))
	case FieldProg:
		return progNames[rng.Intn(len(progNames))]
	case FieldHost:
		return fmt.Sprintf("%s:%d", hostNames[rng.Intn(len(hostNames))], 1+rng.Intn(65535))
	default:
		return "?"
	}
}

// fieldTokenLen reports how many whitespace tokens a rendered field
// occupies (exception strings span several words; everything else is one).
func fieldTokenLen(f Field) int {
	if f == FieldExc {
		// Every entry in excClasses has a fixed shape; use the minimum so
		// length accounting stays conservative.
		n := len(strings.Fields(excClasses[0]))
		for _, e := range excClasses[1:] {
			if l := len(strings.Fields(e)); l < n {
				n = l
			}
		}
		return n
	}
	return 1
}
