package gen

import "sync"

// Proxifier models the standalone desktop proxy-client log (Table I: 10,108
// lines, only 8 event types, lengths 10–27 tokens). All eight templates are
// hand-written — the real Proxifier vocabulary is this small, which is why
// every parser scores well on it and why the paper applies no
// domain-knowledge preprocessing to it.

var proxifierSpecs = []Spec{
	MustSpec("PX-E1", "<prog> - <host> open through proxy <host> HTTPS"),
	MustSpec("PX-E2", "<prog> - <host> open through proxy <host> SOCKS5"),
	MustSpec("PX-E3", "<prog> - <host> close, <int> bytes sent, <int> bytes received, lifetime <dur>"),
	MustSpec("PX-E4", "<prog> - <host> close, <int> bytes (<size>) sent, <int> bytes (<size>) received, lifetime <dur>"),
	MustSpec("PX-E5", "<prog> - <host> error : Could not connect through proxy <host> - Proxy server cannot establish a connection with the target, status code <int>"),
	MustSpec("PX-E6", "<prog> - <host> error : Could not connect to proxy <host> - connection attempt timed out after <dur>"),
	MustSpec("PX-E7", "<prog> *64 - <host> open directly chain <word>"),
	MustSpec("PX-E8", "<prog> - <host> request rejected by rule <word> default deny"),
}

var (
	proxifierOnce    sync.Once
	proxifierCatalog *Catalog
)

// Proxifier returns the Proxifier dataset catalogue.
func Proxifier() *Catalog {
	proxifierOnce.Do(func() {
		proxifierCatalog = mustCatalog("Proxifier", proxifierSpecs)
	})
	return proxifierCatalog
}
