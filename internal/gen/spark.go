package gen

import "sync"

// Spark models a Spark executor log (loghub's Spark sample: ~36 event
// types, short block-manager and scheduler messages of 3–30 tokens). Spark
// is the smallest vocabulary in the extended suite — nearly every line is
// one of a handful of memory-store or task events, which makes it the
// easiest online-parsing target and a good lower anchor for conformance
// floors.

const sparkEvents = 36

var sparkHead = []Spec{
	MustSpec("SP-E1", "Reading broadcast variable <int> took <int> ms"),
	MustSpec("SP-E2", "Block broadcast_<int> stored as values in memory (estimated size <size> B, free <size> B)"),
	MustSpec("SP-E3", "Block broadcast_<int>_piece<int> stored as bytes in memory (estimated size <size> B, free <size> B)"),
	MustSpec("SP-E4", "Found block rdd_<int>_<int> locally"),
	MustSpec("SP-E5", "Getting <int> non-empty blocks out of <int> blocks"),
	MustSpec("SP-E6", "Started <int> remote fetches in <int> ms"),
	MustSpec("SP-E7", "Running task <flt> in stage <flt> (TID <int>)"),
	MustSpec("SP-E8", "Finished task <flt> in stage <flt> (TID <int>). <size> bytes result sent to driver"),
	MustSpec("SP-E9", "Started reading broadcast variable <int>"),
	MustSpec("SP-E10", "Ensuring free space of <size> bytes by evicting <int> blocks"),
	MustSpec("SP-E11", "Dropping block rdd_<int>_<int> from memory"),
	MustSpec("SP-E12", "Writing to shuffle file <path>"),
	MustSpec("SP-E13", "maxBytesInFlight: <size>, targetRequestSize: <size>"),
	MustSpec("SP-E14", "Got assigned task <int>"),
	MustSpec("SP-E15", "Partition rdd_<int>_<int> not found, computing it"),
	MustSpec("SP-E16", "Asked to send map output locations for shuffle <int> to <host>"),
	MustSpec("SP-E17", "Exception in connection from <host> java.io.IOException: Connection reset by peer"),
	MustSpec("SP-E18", "Connecting to driver: spark://CoarseGrainedScheduler@<host>"),
	MustSpec("SP-E19", "Registered executor NettyRpcEndpointRef(null) (<host>) with ID <int>"),
	MustSpec("SP-E20", "Told master about block broadcast_<int>_piece<int>"),
}

var (
	sparkOnce    sync.Once
	sparkCatalog *Catalog
)

// Spark returns the Spark executor dataset catalogue.
func Spark() *Catalog {
	sparkOnce.Do(func() {
		style := synthStyle{
			prefixes:     []string{"executor:", "storage:", "shuffle:", "rpc:"},
			fieldPalette: []Field{FieldInt, FieldSize, FieldHost, FieldDuration, FieldFloat},
			fieldProb:    0.35,
			longTailProb: 0.0,
		}
		tail := synthesizeSpecs("SP", 0x3B2A, sparkEvents-len(sparkHead), 3, 30, style, sparkHead)
		sparkCatalog = mustCatalog("Spark", append(append([]Spec(nil), sparkHead...), tail...))
	})
	return sparkCatalog
}
