package gen

import (
	"reflect"
	"testing"
)

func TestHadoopEventCount(t *testing.T) {
	if got := Hadoop().NumEvents(); got != hadoopEvents {
		t.Fatalf("Hadoop catalogue has %d events, want %d", got, hadoopEvents)
	}
}

func TestHadoopLengthRange(t *testing.T) {
	lo, hi := Hadoop().LengthRange()
	if lo < 2 || hi > 45 {
		t.Errorf("Hadoop length range [%d,%d] outside expected [2,45]", lo, hi)
	}
}

func TestHadoopGenerateDeterministic(t *testing.T) {
	a := Hadoop().Generate(17, 500)
	b := Hadoop().Generate(17, 500)
	if !reflect.DeepEqual(a, b) {
		t.Error("Hadoop generation not deterministic in seed")
	}
}

func TestHadoopMessagesMatchTheirSpec(t *testing.T) {
	c := Hadoop()
	byID := make(map[string]Spec)
	for _, s := range c.Specs {
		byID[s.ID] = s
	}
	for _, m := range c.Generate(3, 800) {
		spec, ok := byID[m.TruthID]
		if !ok {
			t.Fatalf("message labelled with unknown spec %q", m.TruthID)
		}
		if got, want := len(m.Tokens), spec.MinTokens(); got < want {
			t.Errorf("%s: rendered %d tokens, spec minimum %d", m.TruthID, got, want)
		}
	}
}

func TestHadoopZipfSkew(t *testing.T) {
	small := DistinctEvents(Hadoop().Generate(1, 400))
	large := DistinctEvents(Hadoop().Generate(1, 40000))
	if small >= large {
		t.Errorf("distinct events must grow with volume: %d vs %d", small, large)
	}
	if large < hadoopEvents/2 {
		t.Errorf("40k lines exposed only %d of %d events", large, hadoopEvents)
	}
}
