package gen

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"logparse/internal/core"
)

// HDFS models the Hadoop File System log of Xu et al. (SOSP'09), the
// dataset of the paper's RQ3 study (Table I: 11,175,629 lines, exactly 29
// event types; 575,061 block operation requests of which 16,838 are
// anomalous). The 29 templates below follow the published HDFS template
// set. Unlike the other datasets, HDFS is generated per *session*: each
// block ID gets a lifecycle of events, and anomalous lifecycles are
// injected with exact labels — the ground truth Table III scores against.

// hdfsSpecs are the 29 HDFS event templates, ordered by typical frequency
// (the order is the Zipf popularity rank for line-sampled generation).
var hdfsSpecs = []Spec{
	MustSpec("HDFS-E26", "BLOCK* NameSystem.addStoredBlock: blockMap updated: <ip> is added to <blk> size <size>"),
	MustSpec("HDFS-E5", "Receiving block <blk> src: <ips> dest: <ip>"),
	MustSpec("HDFS-E11", "PacketResponder <ridx> for block <blk> terminating"),
	MustSpec("HDFS-E9", "Received block <blk> of size <size> from <ip>"),
	MustSpec("HDFS-E22", "BLOCK* NameSystem.allocateBlock: <path> <blk>"),
	MustSpec("HDFS-E21", "Deleting block <blk> file <path>"),
	MustSpec("HDFS-E23", "BLOCK* NameSystem.delete: <blk> is added to invalidSet of <ip>"),
	MustSpec("HDFS-E2", "Verification succeeded for <blk>"),
	MustSpec("HDFS-E3", "Served block <blk> to <ip>"),
	MustSpec("HDFS-E6", "Received block <blk> src: <ip> dest: <ip> of size <size>"),
	MustSpec("HDFS-E18", "<blk> Starting thread to transfer block <blk> to <ip>"),
	MustSpec("HDFS-E16", "Transmitted block <blk> to <ip>"),
	MustSpec("HDFS-E25", "BLOCK* ask <ip> to replicate <blk> to datanode(s) <ip>"),
	MustSpec("HDFS-E1", "Adding an already existing block <blk>"),
	MustSpec("HDFS-E4", "Got exception while serving <blk> to <ip>"),
	MustSpec("HDFS-E7", "writeBlock <blk> received exception <exc>"),
	MustSpec("HDFS-E8", "PacketResponder <ridx> for block <blk> Interrupted."),
	MustSpec("HDFS-E10", "PacketResponder <blk> <ridx> Exception <exc>"),
	MustSpec("HDFS-E12", "Exception writing block <blk> to mirror <ip>"),
	MustSpec("HDFS-E13", "Receiving empty packet for block <blk>"),
	MustSpec("HDFS-E14", "Exception in receiveBlock for block <blk> <exc>"),
	MustSpec("HDFS-E15", "Changing block file offset of block <blk> from <int> to <int> meta file offset to <int>"),
	MustSpec("HDFS-E17", "Failed to transfer <blk> to <ip> got <exc>"),
	MustSpec("HDFS-E19", "Reopen Block <blk>"),
	MustSpec("HDFS-E20", "Unexpected error trying to delete block <blk>. BlockInfo not found in volumeMap."),
	MustSpec("HDFS-E24", "BLOCK* Removing block <blk> from neededReplications as it does not belong to any file."),
	MustSpec("HDFS-E27", "BLOCK* NameSystem.addStoredBlock: Redundant addStoredBlock request received for <blk> on <ip> size <size>"),
	MustSpec("HDFS-E28", "BLOCK* NameSystem.addStoredBlock: addStoredBlock request received for <blk> on <ip> size <size> But it does not belong to any file."),
	MustSpec("HDFS-E29", "PendingReplicationMonitor timed out block <blk>"),
}

var (
	hdfsOnce    sync.Once
	hdfsCatalog *Catalog
)

// HDFS returns the line-sampled HDFS catalogue used by the accuracy and
// efficiency experiments (RQ1/RQ2). The session-structured generator for
// anomaly detection is GenerateHDFSSessions.
func HDFS() *Catalog {
	hdfsOnce.Do(func() {
		hdfsCatalog = mustCatalog("HDFS", hdfsSpecs)
	})
	return hdfsCatalog
}

// HDFSOptions configures session-structured HDFS generation.
type HDFSOptions struct {
	// Seed makes generation deterministic.
	Seed int64
	// Sessions is the number of block operation requests (paper: 575,061).
	Sessions int
	// AnomalyRate is the fraction of anomalous sessions (paper:
	// 16,838/575,061 ≈ 0.0293). Values outside [0,1] are clamped.
	AnomalyRate float64
	// Replication is the HDFS replication factor (default 3).
	Replication int
}

// HDFSData is a generated session-structured HDFS log.
type HDFSData struct {
	// Messages are the interleaved log lines of all sessions. Session on
	// each message is its block ID.
	Messages []core.LogMessage
	// Labels maps block ID → true when the session is anomalous.
	Labels map[string]bool
	// AnomalyKinds counts injected sessions per anomaly class name.
	AnomalyKinds map[string]int
}

// NumAnomalies returns the number of injected anomalous sessions.
func (d *HDFSData) NumAnomalies() int {
	n := 0
	for _, v := range d.Labels {
		if v {
			n++
		}
	}
	return n
}

// hdfsSpecByID indexes the 29 specs for the session builder.
var hdfsSpecByID = func() map[string]Spec {
	m := make(map[string]Spec, len(hdfsSpecs))
	for _, s := range hdfsSpecs {
		m[s.ID] = s
	}
	return m
}()

// anomalyKinds are the nine injected failure classes. Each produces a
// structurally deviant event-count vector for the block, which is the
// signal the PCA detector keys on.
var anomalyKinds = []string{
	"write-exception", "under-replicated", "redundant-add",
	"delete-failure", "transfer-failure", "empty-packet",
	"serving-exception", "replication-timeout", "offset-anomaly",
}

// GenerateHDFSSessions builds a session-structured HDFS log with injected,
// labelled anomalies. Sessions are interleaved as they would be in a real
// datanode/namenode log while preserving intra-session event order.
func GenerateHDFSSessions(opts HDFSOptions) (*HDFSData, error) {
	if opts.Sessions <= 0 {
		return nil, fmt.Errorf("gen: HDFS sessions must be positive, got %d", opts.Sessions)
	}
	if opts.Replication <= 0 {
		opts.Replication = 3
	}
	rate := opts.AnomalyRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	data := &HDFSData{
		Labels:       make(map[string]bool, opts.Sessions),
		AnomalyKinds: make(map[string]int),
	}
	sessions := make([][]core.LogMessage, opts.Sessions)
	total := 0
	for i := range sessions {
		blk := "blk_" + strconv.FormatInt(rng.Int63(), 10)
		if rng.Intn(2) == 0 {
			blk = "blk_-" + strconv.FormatInt(rng.Int63(), 10)
		}
		anomalous := rng.Float64() < rate
		var seq []string
		if anomalous {
			kind := anomalyKinds[rng.Intn(len(anomalyKinds))]
			data.AnomalyKinds[kind]++
			seq = anomalousSession(kind, opts.Replication, rng)
		} else {
			seq = normalSession(opts.Replication, rng)
		}
		data.Labels[blk] = anomalous
		msgs := make([]core.LogMessage, len(seq))
		overrides := map[Field]string{FieldBlockID: blk}
		for j, id := range seq {
			spec := hdfsSpecByID[id]
			content := spec.RenderWith(rng, overrides)
			msgs[j] = core.LogMessage{
				Content: content,
				Tokens:  core.Tokenize(content),
				TruthID: id,
				Session: blk,
			}
		}
		sessions[i] = msgs
		total += len(msgs)
	}
	data.Messages = interleave(sessions, total, rng)
	for i := range data.Messages {
		data.Messages[i].LineNo = i + 1
	}
	return data, nil
}

// normalSession is the healthy block lifecycle: allocate, replicate to R
// datanodes, register replicas, and sometimes verify, serve or delete.
func normalSession(replication int, rng *rand.Rand) []string {
	seq := []string{"HDFS-E22"}
	for r := 0; r < replication; r++ {
		seq = append(seq, "HDFS-E5")
	}
	for r := 0; r < replication; r++ {
		seq = append(seq, "HDFS-E11", "HDFS-E9")
	}
	for r := 0; r < replication; r++ {
		seq = append(seq, "HDFS-E26")
	}
	if rng.Float64() < 0.20 {
		seq = append(seq, "HDFS-E2")
	}
	// Read traffic: most blocks are served a handful of times, but a small
	// population of hot blocks is read heavily. The hot mode gives the
	// event-count matrix a large *legitimate* variance direction — exactly
	// the structure PCA's normal space exists to absorb; without it the 5%
	// residual budget would swallow the rare failure columns instead.
	reads := rng.Intn(3)
	if rng.Float64() < 0.05 {
		reads = 20 + rng.Intn(60)
	}
	for n := reads; n > 0; n-- {
		seq = append(seq, "HDFS-E3")
	}
	// Rare but benign operational events: rebalancing transfers, block
	// reopen on append, cross-node copies. Healthy lifecycles produce these
	// too, at counts low enough that a support-thresholded parser (SLCT)
	// cannot learn them and dumps them into its outlier cluster alongside
	// genuine failure events of the same shape — the "parsing errors on
	// critical events" that Finding 6 blames for false-alarm blow-up. Each
	// pattern occurs with a fixed multiplicity: the resulting rank-1 count
	// directions are fully captured by the PCA normal space, so under exact
	// parsing these sessions are never false alarms.
	if rng.Float64() < 0.06 { // rebalancing transfer (two threads)
		seq = append(seq, "HDFS-E18", "HDFS-E16", "HDFS-E18", "HDFS-E16")
	}
	if rng.Float64() < 0.05 { // reopen on append (offset changes twice)
		seq = append(seq, "HDFS-E19", "HDFS-E15", "HDFS-E15")
	}
	if rng.Float64() < 0.04 { // cross-node copy acknowledgement
		seq = append(seq, "HDFS-E6", "HDFS-E6")
	}
	if rng.Float64() < 0.25 {
		seq = append(seq, "HDFS-E23")
		for r := 0; r < replication; r++ {
			seq = append(seq, "HDFS-E21")
		}
	}
	return seq
}

// anomalousSession builds the event sequence for one failure class. Counts
// are randomised within each class — real failures repeat retries and
// exceptions a varying number of times, and without that spread each class
// would form a tight cluster that PCA simply absorbs as another principal
// direction.
func anomalousSession(kind string, replication int, rng *rand.Rand) []string {
	// rep appends id n times.
	var seq []string
	rep := func(id string, n int) {
		for ; n > 0; n-- {
			seq = append(seq, id)
		}
	}
	r1 := 1 + rng.Intn(2) // small random multiplicity
	switch kind {
	case "write-exception":
		seq = []string{"HDFS-E22", "HDFS-E5"}
		rep("HDFS-E7", r1)
		rep("HDFS-E14", 1)
		rep("HDFS-E12", rng.Intn(2))
		seq = append(seq, "HDFS-E11", "HDFS-E9", "HDFS-E26")
	case "under-replicated":
		got := 1 + rng.Intn(replication-1) // fewer replicas than required
		seq = []string{"HDFS-E22"}
		rep("HDFS-E5", got)
		rep("HDFS-E11", got)
		rep("HDFS-E9", got)
		rep("HDFS-E26", got)
		rep("HDFS-E24", r1)
	case "redundant-add":
		seq = normalSession(replication, rng)
		rep("HDFS-E27", 1+rng.Intn(2))
		rep("HDFS-E1", rng.Intn(2)+1)
	case "delete-failure":
		seq = []string{"HDFS-E22"}
		for r := 0; r < replication; r++ {
			seq = append(seq, "HDFS-E5", "HDFS-E11", "HDFS-E9", "HDFS-E26")
		}
		rep("HDFS-E20", r1)
		rep("HDFS-E21", rng.Intn(replication))
	case "transfer-failure":
		seq = []string{"HDFS-E22", "HDFS-E5", "HDFS-E11", "HDFS-E9", "HDFS-E26"}
		rep("HDFS-E17", 1+rng.Intn(2))
		rep("HDFS-E25", 1+rng.Intn(2))
	case "empty-packet":
		seq = []string{"HDFS-E22"}
		rep("HDFS-E5", 1+rng.Intn(replication))
		rep("HDFS-E13", 1+rng.Intn(2))
		rep("HDFS-E14", r1)
		rep("HDFS-E8", rng.Intn(2)+1)
	case "serving-exception":
		seq = normalSession(replication, rng)
		rep("HDFS-E3", r1)
		rep("HDFS-E4", 1+rng.Intn(2))
	case "replication-timeout":
		got := 1 + rng.Intn(replication)
		seq = []string{"HDFS-E22"}
		rep("HDFS-E5", got)
		rep("HDFS-E11", got)
		rep("HDFS-E9", got)
		rep("HDFS-E26", got)
		rep("HDFS-E29", r1)
		rep("HDFS-E25", 1+rng.Intn(2))
	case "offset-anomaly":
		// Stale-replica registration: addStoredBlock requests for a block
		// that no longer belongs to any file.
		seq = []string{"HDFS-E22"}
		rep("HDFS-E5", replication)
		for r := 0; r < replication; r++ {
			seq = append(seq, "HDFS-E11", "HDFS-E9", "HDFS-E26")
		}
		rep("HDFS-E28", 1+rng.Intn(2))
		rep("HDFS-E26", 1)
	default:
		seq = normalSession(replication, rng)
	}
	return seq
}

// interleave merges per-session message queues into one stream, preserving
// intra-session order while mixing sessions randomly, approximating the
// arrival order of a multiplexed cluster log.
func interleave(sessions [][]core.LogMessage, total int, rng *rand.Rand) []core.LogMessage {
	out := make([]core.LogMessage, 0, total)
	// active holds indices of sessions with messages remaining.
	active := make([]int, len(sessions))
	pos := make([]int, len(sessions))
	for i := range sessions {
		active[i] = i
	}
	for len(active) > 0 {
		k := rng.Intn(len(active))
		s := active[k]
		out = append(out, sessions[s][pos[s]])
		pos[s]++
		if pos[s] == len(sessions[s]) {
			active[k] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
	return out
}
