package gen

import (
	"fmt"
	"math/rand"
)

// The hand-written catalogue heads below cover the well-known events of each
// system. Real catalogues are far larger (Table I: BGL has 376 events, HPC
// 105, Zookeeper 80); the long tail is synthesised here. Synthesis is
// deterministic per dataset (fixed seed), so the catalogues — and therefore
// every experiment — are stable across runs.

type synthStyle struct {
	// prefixes start a message (subsystem tags like "ciod:" or "kernel:").
	prefixes []string
	// fieldPalette lists the variable kinds the system's messages carry.
	fieldPalette []Field
	// fieldProb is the chance each appended slot is a field vs a literal.
	fieldProb float64
	// longTailProb is the chance a spec is "long" (towards maxLen), which
	// models stack-dump style events in supercomputer logs.
	longTailProb float64
}

var synthVerbs = []string{
	"detected", "generating", "starting", "stopping", "committed",
	"flushing", "rejecting", "scheduling", "updating", "verifying",
	"closing", "opening", "binding", "releasing", "allocating",
	"synchronizing", "replaying", "parsing", "installed", "corrected",
	"disabling", "enabling", "aborting", "retrying", "suspending",
	"resuming", "probing", "mounting", "unmounting", "draining",
}

var synthNouns = []string{
	"cache", "register", "directory", "inode", "superblock", "checkpoint",
	"barrier", "semaphore", "mutex", "scheduler", "allocator", "daemon",
	"monitor", "controller", "interface", "adapter", "partition", "cluster",
	"namespace", "descriptor", "pipeline", "transaction", "segment",
	"channel", "buffer", "queue", "thread", "socket", "stream", "replica",
	"journal", "snapshot", "heartbeat", "lease", "quorum", "volume",
	"fabric", "midplane", "nodecard", "linkcard",
}

var synthAdjectives = []string{
	"invalid", "corrupted", "stale", "redundant", "orphaned", "unexpected",
	"fatal", "transient", "partial", "missing", "duplicate", "degraded",
	"uncorrectable", "correctable", "critical", "spurious",
}

var synthTails = [][]string{
	{"rc", "=", "<int>"},
	{"status", "=", "<hex>"},
	{"on", "<node>"},
	{"after", "<dur>"},
	{"errno", "<int>"},
	{"at", "address", "<hex>"},
	{"retry", "count", "<int>"},
	{"by", "user", "<user>"},
}

// synthesizeSpecs deterministically builds count additional specs with IDs
// "<prefix>-S<i>", each rendering to between minLen and maxLen whitespace
// tokens. Generated event templates are guaranteed distinct from each other
// and from the supplied existing templates.
func synthesizeSpecs(idPrefix string, seed int64, count, minLen, maxLen int, style synthStyle, existing []Spec) []Spec {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, count+len(existing))
	for _, s := range existing {
		seen[s.EventTemplate()] = true
	}
	specs := make([]Spec, 0, count)
	for i := 0; len(specs) < count; i++ {
		target := minLen + rng.Intn(max(1, maxLen/4-minLen+1))
		if rng.Float64() < style.longTailProb {
			target = maxLen/2 + rng.Intn(maxLen-maxLen/2+1)
		}
		dsl := buildSynthDSL(rng, target, style)
		id := fmt.Sprintf("%s-S%d", idPrefix, len(specs)+1)
		spec, err := ParseSpec(id, dsl)
		if err != nil {
			// buildSynthDSL only emits known fields; an error here is a
			// programming bug in the synthesiser.
			panic(err)
		}
		key := spec.EventTemplate()
		if seen[key] || spec.MinTokens() < minLen || spec.MinTokens() > maxLen {
			continue
		}
		seen[key] = true
		specs = append(specs, spec)
	}
	return specs
}

// buildSynthDSL composes one spec DSL string of roughly target tokens.
func buildSynthDSL(rng *rand.Rand, target int, style synthStyle) string {
	words := make([]string, 0, target)
	if len(style.prefixes) > 0 {
		words = append(words, style.prefixes[rng.Intn(len(style.prefixes))])
	}
	// Head phrase: [adjective] noun verb — enough literal signal for
	// parsers to anchor on.
	if rng.Intn(2) == 0 {
		words = append(words, synthAdjectives[rng.Intn(len(synthAdjectives))])
	}
	words = append(words,
		synthNouns[rng.Intn(len(synthNouns))],
		synthVerbs[rng.Intn(len(synthVerbs))])
	// Body: alternate literals and fields until close to target, leaving
	// room for a tail clause.
	for len(words) < target-3 {
		if rng.Float64() < style.fieldProb {
			f := style.fieldPalette[rng.Intn(len(style.fieldPalette))]
			words = append(words, "<"+fieldName(f)+">")
			continue
		}
		words = append(words, synthNouns[rng.Intn(len(synthNouns))])
	}
	if len(words) <= target-3 && rng.Intn(2) == 0 {
		words = append(words, synthTails[rng.Intn(len(synthTails))]...)
	}
	for len(words) < target {
		words = append(words, synthNouns[rng.Intn(len(synthNouns))])
	}
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// fieldName is the inverse of the fieldNames table, used when composing DSL.
func fieldName(f Field) string {
	for name, v := range fieldNames {
		if v == f {
			return name
		}
	}
	return "int"
}
