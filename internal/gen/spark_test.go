package gen

import (
	"reflect"
	"testing"
)

func TestSparkEventCount(t *testing.T) {
	if got := Spark().NumEvents(); got != sparkEvents {
		t.Fatalf("Spark catalogue has %d events, want %d", got, sparkEvents)
	}
}

func TestSparkLengthRange(t *testing.T) {
	lo, hi := Spark().LengthRange()
	if lo < 2 || hi > 30 {
		t.Errorf("Spark length range [%d,%d] outside expected [2,30]", lo, hi)
	}
}

func TestSparkGenerateDeterministic(t *testing.T) {
	a := Spark().Generate(23, 500)
	b := Spark().Generate(23, 500)
	if !reflect.DeepEqual(a, b) {
		t.Error("Spark generation not deterministic in seed")
	}
}

func TestSparkMessagesMatchTheirSpec(t *testing.T) {
	c := Spark()
	byID := make(map[string]Spec)
	for _, s := range c.Specs {
		byID[s.ID] = s
	}
	for _, m := range c.Generate(3, 800) {
		spec, ok := byID[m.TruthID]
		if !ok {
			t.Fatalf("message labelled with unknown spec %q", m.TruthID)
		}
		if got, want := len(m.Tokens), spec.MinTokens(); got < want {
			t.Errorf("%s: rendered %d tokens, spec minimum %d", m.TruthID, got, want)
		}
	}
}

func TestSparkSmallVocabularyCoveredQuickly(t *testing.T) {
	// Spark's 36-event vocabulary is the smallest in the extended suite;
	// even a modest sample exposes most of it.
	got := DistinctEvents(Spark().Generate(1, 10000))
	if got < sparkEvents*2/3 {
		t.Errorf("10k lines exposed only %d of %d events", got, sparkEvents)
	}
}
