package gen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"logparse/internal/core"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("T1", "Receiving block <blk> src: <ip>")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EventTemplate(); got != "Receiving block * src: *" {
		t.Errorf("EventTemplate = %q", got)
	}
	if got := s.MinTokens(); got != 5 {
		t.Errorf("MinTokens = %d, want 5", got)
	}
}

func TestParseSpecEmbeddedFields(t *testing.T) {
	s, err := ParseSpec("T2", "session sessionid:<sess> cxid:<hex> (HWID=<int>)")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EventTemplate(); got != "session sessionid:* cxid:* (HWID=*)" {
		t.Errorf("EventTemplate = %q", got)
	}
	rendered := s.Render(rand.New(rand.NewSource(1)))
	if !strings.HasPrefix(rendered, "session sessionid:0x") {
		t.Errorf("rendered = %q", rendered)
	}
	if got := len(core.Tokenize(rendered)); got != 4 {
		t.Errorf("rendered token count = %d, want 4", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec("bad", "hello <nosuchfield>"); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec("empty", "   "); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestSpecRenderDeterministic(t *testing.T) {
	s := MustSpec("T", "event <int> at <hex> on <node>")
	a := s.Render(rand.New(rand.NewSource(7)))
	b := s.Render(rand.New(rand.NewSource(7)))
	if a != b {
		t.Errorf("same seed produced %q and %q", a, b)
	}
}

func TestRenderWithOverrides(t *testing.T) {
	s := MustSpec("T", "block <blk> to <blk> size <int>")
	out := s.RenderWith(rand.New(rand.NewSource(1)), map[Field]string{FieldBlockID: "blk_X"})
	toks := core.Tokenize(out)
	if toks[1] != "blk_X" || toks[3] != "blk_X" {
		t.Errorf("override not applied to all occurrences: %q", out)
	}
}

func TestCatalogDuplicateIDRejected(t *testing.T) {
	specs := []Spec{MustSpec("A", "x"), MustSpec("A", "y")}
	if _, err := NewCatalog("dup", specs); err == nil {
		t.Error("duplicate spec ID accepted")
	}
	if _, err := NewCatalog("empty", nil); err == nil {
		t.Error("empty catalogue accepted")
	}
}

func TestCatalogGenerateDeterministic(t *testing.T) {
	c := HDFS()
	a := c.Generate(99, 500)
	b := c.Generate(99, 500)
	if !reflect.DeepEqual(a, b) {
		t.Error("generation not deterministic in seed")
	}
	differentSeed := c.Generate(100, 500)
	same := true
	for i := range a {
		if a[i].Content != differentSeed[i].Content {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestTableIEventCounts(t *testing.T) {
	wantEvents := map[string]int{
		"BGL": 376, "HPC": 105, "Proxifier": 8, "HDFS": 29, "Zookeeper": 80,
	}
	for name, want := range wantEvents {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.NumEvents(); got != want {
			t.Errorf("%s has %d events, want %d (Table I)", name, got, want)
		}
	}
}

func TestTableILengthRanges(t *testing.T) {
	// Table I maxima; minima in the paper include header fields our
	// message-content generators omit, so only the maxima are asserted
	// tightly.
	maxLen := map[string]int{
		"BGL": 102, "HPC": 104, "Proxifier": 27, "HDFS": 29, "Zookeeper": 27,
	}
	for name, wantMax := range maxLen {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := c.LengthRange()
		if lo < 1 || hi > wantMax {
			t.Errorf("%s length range [%d,%d] outside Table I bound (max %d)", name, lo, hi, wantMax)
		}
	}
}

func TestGeneratedMessagesMatchTheirSpec(t *testing.T) {
	// Property: every generated message's ground-truth template matches
	// its token sequence modulo wildcards (for specs without multi-token
	// fields, lengths must agree exactly).
	for _, name := range Names {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[string]Spec)
		for _, s := range c.Specs {
			byID[s.ID] = s
		}
		for _, m := range c.Generate(3, 500) {
			spec, ok := byID[m.TruthID]
			if !ok {
				t.Fatalf("%s: message labelled with unknown spec %q", name, m.TruthID)
			}
			if got, want := len(m.Tokens), spec.MinTokens(); got < want {
				t.Errorf("%s/%s: rendered %d tokens, spec minimum %d", name, m.TruthID, got, want)
			}
		}
	}
}

func TestZipfSkewExposesFewEventsInSmallSamples(t *testing.T) {
	// §IV-C: a 400-line BGL sample exposes ~60 of 376 events, 40k ~206.
	c := BGL()
	small := DistinctEvents(c.Generate(1, 400))
	large := DistinctEvents(c.Generate(1, 40000))
	if small < 30 || small > 110 {
		t.Errorf("BGL@400 distinct events = %d, want ≈60", small)
	}
	if large < 150 || large > 320 {
		t.Errorf("BGL@40k distinct events = %d, want ≈206", large)
	}
	if small >= large {
		t.Errorf("distinct events must grow with volume: %d vs %d", small, large)
	}
}

func TestSpecWeightMonotone(t *testing.T) {
	prev := specWeight(1)
	for r := 2; r <= 400; r++ {
		w := specWeight(r)
		if w <= 0 || w > prev {
			t.Fatalf("weight not positive-decreasing at rank %d: %v > %v", r, w, prev)
		}
		prev = w
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := ByName("hdfs"); err != nil {
		t.Errorf("lowercase name rejected: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLogs != FullSize["HDFS"] || s.NumEvents != 29 {
		t.Errorf("Summarize(HDFS) = %+v", s)
	}
}

func TestTruthResult(t *testing.T) {
	msgs := HDFS().Generate(5, 300)
	res := TruthResult(msgs)
	if err := res.Validate(len(msgs)); err != nil {
		t.Fatal(err)
	}
	// Every message must be assigned to a template whose ID equals its
	// ground-truth label.
	for i, m := range msgs {
		if got := res.Templates[res.Assignment[i]].ID; got != m.TruthID {
			t.Fatalf("message %d assigned to %q, truth %q", i, got, m.TruthID)
		}
	}
	if got, want := len(res.Templates), DistinctEvents(msgs); got != want {
		t.Errorf("templates = %d, distinct truth events = %d", got, want)
	}
}

func TestCatalogSampleProperty(t *testing.T) {
	c := Zookeeper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := c.sample(rng)
		return idx >= 0 && idx < len(c.Specs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
