package gen

import "sync"

// Zookeeper models the lab-collected Zookeeper log (Table I: 74,380 lines,
// 80 event types, lengths 8–27 tokens). The head reproduces the familiar
// quorum/session events; the synthesiser fills the 80-event vocabulary.

const zookeeperEvents = 80

var zookeeperHead = []Spec{
	MustSpec("ZK-E1", "Received connection request <ip>"),
	MustSpec("ZK-E2", "Accepted socket connection from <ip>"),
	MustSpec("ZK-E3", "Closed socket connection for client <ip> which had sessionid <sess>"),
	MustSpec("ZK-E4", "Client attempting to establish new session at <ip>"),
	MustSpec("ZK-E5", "Established session <sess> with negotiated timeout <int> for client <ip>"),
	MustSpec("ZK-E6", "Expiring session <sess>, timeout of <dur> exceeded"),
	MustSpec("ZK-E7", "Processed session termination for sessionid: <sess>"),
	MustSpec("ZK-E8", "caught end of stream exception: Unable to read additional data from client sessionid <sess>, likely client has closed socket"),
	MustSpec("ZK-E9", "Connection broken for id <int>, my id = <int>, error = java.io.EOFException"),
	MustSpec("ZK-E10", "Interrupting SendWorker thread for id <int>"),
	MustSpec("ZK-E11", "Send worker leaving thread id <int>"),
	MustSpec("ZK-E12", "Notification: <int> (n.leader), <zxid> (n.zxid), <int> (n.round), FOLLOWING (n.state), <int> (n.sid), LOOKING (my state)"),
	MustSpec("ZK-E13", "New election. My id = <int>, proposed zxid=<zxid>"),
	MustSpec("ZK-E14", "Snapshotting: <zxid> to <path>"),
	MustSpec("ZK-E15", "Reading snapshot <path>"),
	MustSpec("ZK-E16", "Got user-level KeeperException when processing sessionid:<sess> type:create cxid:<hex> zxid:<zxid> txntype:-1 reqpath:n/a Error Path:<path> Error:KeeperErrorCode = NodeExists"),
	MustSpec("ZK-E17", "Cannot open channel to <int> at election address <ip>"),
	MustSpec("ZK-E18", "Connection request from old client <ip>; will be dropped if server is in r-o mode"),
	MustSpec("ZK-E19", "Exception causing close of session <sess> due to java.io.IOException: ZooKeeperServer not running"),
	MustSpec("ZK-E20", "Follower sid: <int> : info : org.apache.zookeeper.server.quorum.QuorumPeer$QuorumServer@<hex>"),
	MustSpec("ZK-E21", "Accepted epoch <zxid> from leader <int> on <node>"),
	MustSpec("ZK-E22", "Synchronized with leader <int> in <dur>, zxid <zxid>"),
	MustSpec("ZK-E23", "shutdown of request processor complete"),
	MustSpec("ZK-E24", "FOLLOWING - LEADER ELECTION TOOK - <int>"),
}

var (
	zookeeperOnce    sync.Once
	zookeeperCatalog *Catalog
)

// Zookeeper returns the Zookeeper dataset catalogue.
func Zookeeper() *Catalog {
	zookeeperOnce.Do(func() {
		style := synthStyle{
			prefixes:     []string{"quorum:", "txn:", "snap:", "elect:"},
			fieldPalette: []Field{FieldSession, FieldZxid, FieldIP, FieldInt, FieldPath},
			fieldProb:    0.35,
			longTailProb: 0.0,
		}
		tail := synthesizeSpecs("ZK", 0x200, zookeeperEvents-len(zookeeperHead), 8, 27, style, zookeeperHead)
		zookeeperCatalog = mustCatalog("Zookeeper", append(append([]Spec(nil), zookeeperHead...), tail...))
	})
	return zookeeperCatalog
}
