package logparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestAlgorithms(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 6 {
		t.Fatalf("algorithms = %v", algos)
	}
	for _, a := range algos {
		opts := Options{NumGroups: 5} // satisfies LogSig
		p, err := NewParser(a, opts)
		if err != nil {
			t.Fatalf("NewParser(%s): %v", a, err)
		}
		if p.Name() != a {
			t.Errorf("parser %s reports name %s", a, p.Name())
		}
	}
}

func TestNewParserErrors(t *testing.T) {
	if _, err := NewParser("nope", Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewParser("LogSig", Options{}); err == nil {
		t.Error("LogSig without NumGroups accepted")
	}
	if _, err := NewParser("slct", Options{}); err != nil {
		t.Errorf("case-insensitive lookup broken: %v", err)
	}
}

func TestDatasets(t *testing.T) {
	names := Datasets()
	if len(names) != 8 {
		t.Fatalf("datasets = %v", names)
	}
	want := []string{"BGL", "HPC", "Proxifier", "HDFS", "Zookeeper"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("paper datasets must lead the list: got %v", names)
		}
	}
	for _, n := range names {
		cat, err := Dataset(n)
		if err != nil {
			t.Fatalf("Dataset(%s): %v", n, err)
		}
		msgs := cat.Generate(1, 50)
		if len(msgs) != 50 {
			t.Errorf("%s generated %d messages", n, len(msgs))
		}
	}
	if _, err := Dataset("bogus"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEndToEndParseAndScore(t *testing.T) {
	cat, err := Dataset("Zookeeper")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(3, 1000)
	parser, err := NewParser("IPLoM", Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(msgs)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateResult(msgs, res)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F < 0.9 {
		t.Errorf("IPLoM on Zookeeper F=%.2f, want ≥0.9", acc.F)
	}
}

func TestPreprocessFacade(t *testing.T) {
	msgs := []Message{{Content: "block blk_12345 stored", Tokens: Tokenize("block blk_12345 stored")}}
	out := Preprocess("HDFS", msgs)
	if out[0].Tokens[1] != Wildcard {
		t.Errorf("block ID not masked: %v", out[0].Tokens)
	}
	// Unknown dataset: identity.
	out = Preprocess("unknown", msgs)
	if out[0].Tokens[1] != "blk_12345" {
		t.Errorf("unknown dataset rewrote tokens: %v", out[0].Tokens)
	}
}

func TestIOFacadeRoundTrip(t *testing.T) {
	cat, err := Dataset("Proxifier")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(2, 100)
	var buf bytes.Buffer
	if err := WriteMessages(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMessages(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(msgs) || back[0].Content != msgs[0].Content || back[0].TruthID != msgs[0].TruthID {
		t.Error("round trip lost data")
	}
}

func TestWriteOutputsFacade(t *testing.T) {
	cat, err := Dataset("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(1, 300)
	parser, err := NewParser("SLCT", Options{Support: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := parser.Parse(msgs)
	if err != nil {
		t.Fatal(err)
	}
	var events, structured bytes.Buffer
	if err := WriteEvents(&events, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteStructured(&structured, msgs, res); err != nil {
		t.Fatal(err)
	}
	if events.Len() == 0 || structured.Len() == 0 {
		t.Error("empty output files")
	}
	if got := len(strings.Split(strings.TrimSpace(structured.String()), "\n")); got != 300 {
		t.Errorf("structured log has %d lines, want 300", got)
	}
}

func TestAnomalyFacade(t *testing.T) {
	data, err := GenerateHDFSSessions(HDFSSessionOptions{Seed: 5, Sessions: 1500, AnomalyRate: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectAnomalies(data.Messages, GroundTruthResult(data.Messages), DefaultAnomalyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := EvaluateAnomalies(res, data.Labels)
	if rep.TotalAnomalies != data.NumAnomalies() {
		t.Errorf("report anomalies %d, labels %d", rep.TotalAnomalies, data.NumAnomalies())
	}
	if rep.DetectedRate() < 0.4 {
		t.Errorf("detected %.0f%%, want ≥40%%", 100*rep.DetectedRate())
	}
}

func TestParallelParserFacade(t *testing.T) {
	cat, err := Dataset("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(9, 3000)
	p, err := NewParallelParser("IPLoM", 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Parse(msgs)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateResult(msgs, res)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F < 0.85 {
		t.Errorf("parallel IPLoM F=%.2f", acc.F)
	}
	if _, err := NewParallelParser("bogus", 2, Options{}); err == nil {
		t.Error("invalid algorithm accepted by parallel wrapper")
	}
}

func TestDeployAndModelFacade(t *testing.T) {
	base, err := GenerateHDFSSessions(HDFSSessionOptions{Seed: 1, Sessions: 200, AnomalyRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := GenerateHDFSSessions(HDFSSessionOptions{Seed: 2, Sessions: 200, AnomalyRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	parser, err := NewParser("IPLoM", Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := VerifyDeployment(base.Messages, dep.Messages, parser)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeployedSessions != 200 {
		t.Errorf("deployed sessions = %d", res.DeployedSessions)
	}
	parsed, err := parser.Parse(base.Messages)
	if err != nil {
		t.Fatal(err)
	}
	traces := EventTraces(base.Messages, parsed)
	model, err := BuildModel(traces, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumStates == 0 {
		t.Error("empty model")
	}
	ivs, err := MineInvariants(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Error("no invariants")
	}
}

func TestSummarizeDatasetFacade(t *testing.T) {
	s, err := SummarizeDataset("BGL")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEvents != 376 {
		t.Errorf("BGL events = %d", s.NumEvents)
	}
}
