// Template matching: the online half of log parsing. Mine templates from a
// historical window with an offline parser, then type a live stream with
// the O(message-length) matcher — including raw lines with production
// headers — and extract the runtime parameters of each event.
package main

import (
	"fmt"
	"log"
	"time"

	"logparse"
)

func main() {
	cat, err := logparse.Dataset("HDFS")
	if err != nil {
		log.Fatal(err)
	}

	// Offline: mine templates from yesterday's window.
	history := cat.Generate(1, 5000)
	parser, err := logparse.NewParser("IPLoM", logparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mined, err := parser.Parse(history)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := logparse.NewMatcher(mined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mined %d templates from %d historical lines.\n\n",
		matcher.NumTemplates(), len(history))

	// Online: today's traffic arrives as full raw lines (with headers).
	today := cat.Generate(2, 20000)
	raw, err := logparse.RenderRawLines("HDFS", today, 7,
		time.Date(2008, 11, 11, 3, 40, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Raw line example:\n  %s\n\n", raw[0])

	matched, unmatched := 0, 0
	start := time.Now()
	for _, line := range raw {
		content, err := logparse.StripHeader("HDFS", line)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := matcher.MatchContent(content); err != nil {
			unmatched++
			continue
		}
		matched++
	}
	elapsed := time.Since(start)
	fmt.Printf("Typed %d lines in %v (%.0f lines/s): %d matched, %d unknown.\n\n",
		len(raw), elapsed.Round(time.Millisecond),
		float64(len(raw))/elapsed.Seconds(), matched, unmatched)

	// Parameter extraction: the variable parts are the runtime data.
	tokens := logparse.Tokenize("Receiving block blk_42 src: /10.251.30.10:40997 dest: /10.251.31.23:50010")
	tmpl, params, err := matcherParams(matcher, tokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Event: %s\nParameters: %v\n", tmpl, params)
}

func matcherParams(m *logparse.Matcher, tokens []string) (logparse.Template, []string, error) {
	return m.Parameters(tokens)
}
