// Parser comparison: a miniature of the paper's RQ1/RQ2 — accuracy with
// and without domain-knowledge preprocessing (Finding 2), and running time
// as the input grows (Finding 3), on the BGL supercomputer dataset.
package main

import (
	"fmt"
	"log"
	"time"

	"logparse"
)

func main() {
	cat, err := logparse.Dataset("BGL")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Accuracy on 2k BGL lines (raw → preprocessed):")
	msgs := cat.Generate(42, 2000)
	pre := logparse.Preprocess("BGL", msgs)
	for _, algo := range logparse.Algorithms() {
		parser := mustParser(algo, cat.NumEvents())
		rawF := parseF(parser, msgs)
		ppF := parseF(parser, pre)
		fmt.Printf("  %-7s %.2f → %.2f\n", algo, rawF, ppF)
	}

	fmt.Println("\nRunning time vs input size (Finding 3 — note LKE's quadratic growth):")
	for _, n := range []int{400, 1000, 2000, 4000} {
		sample := cat.Generate(42, n)
		fmt.Printf("  %6d lines:", n)
		for _, algo := range []string{"SLCT", "IPLoM", "LKE"} {
			parser := mustParser(algo, cat.NumEvents())
			start := time.Now()
			if _, err := parser.Parse(sample); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%v", algo, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
}

func mustParser(algo string, events int) logparse.Parser {
	opts := logparse.Options{Seed: 1}
	if algo == "LogSig" {
		opts.NumGroups = events
	}
	p, err := logparse.NewParser(algo, opts)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func parseF(parser logparse.Parser, msgs []logparse.Message) float64 {
	result, err := parser.Parse(msgs)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := logparse.EvaluateResult(msgs, result)
	if err != nil {
		log.Fatal(err)
	}
	return acc.F
}
