// Anomaly detection: the paper's RQ3 pipeline end to end. Generates a
// session-structured HDFS log with injected failures, parses it with a
// tuned parser, runs the PCA detector of Xu et al. (SOSP 2009), and scores
// the verdicts against the injected labels — then repeats with the exact
// ground-truth parse to show how parsing errors change the outcome.
package main

import (
	"fmt"
	"log"

	"logparse"
)

func main() {
	data, err := logparse.GenerateHDFSSessions(logparse.HDFSSessionOptions{
		Seed:        7,
		Sessions:    4000,
		AnomalyRate: 0.0293,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDFS log: %d lines, %d block sessions, %d injected anomalies\n\n",
		len(data.Messages), 4000, data.NumAnomalies())

	run := func(label string, parsed *logparse.Result) {
		res, err := logparse.DetectAnomalies(data.Messages, parsed, logparse.DefaultAnomalyOptions())
		if err != nil {
			log.Fatal(err)
		}
		rep := logparse.EvaluateAnomalies(res, data.Labels)
		fmt.Printf("%-14s reported=%-5d detected=%d (%.0f%% of anomalies) false alarms=%d\n",
			label, rep.Reported, rep.Detected, 100*rep.DetectedRate(), rep.FalseAlarms)
	}

	// A support-thresholded parser: rare failure events fall below support
	// and get binned with rare benign events, producing false alarms.
	slct, err := logparse.NewParser("SLCT", logparse.Options{SupportFrac: 0.0028})
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := slct.Parse(data.Messages)
	if err != nil {
		log.Fatal(err)
	}
	run("SLCT", parsed)

	iplom, err := logparse.NewParser("IPLoM", logparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	parsed, err = iplom.Parse(data.Messages)
	if err != nil {
		log.Fatal(err)
	}
	run("IPLoM", parsed)

	run("Ground truth", logparse.GroundTruthResult(data.Messages))
	fmt.Println("\nFinding 6: comparable parsing accuracy can still differ by an order")
	fmt.Println("of magnitude in false alarms — log mining is sensitive to parsing")
	fmt.Println("errors on critical (rare) events.")
}
