// Deployment verification (§III-A, after Shang et al. ICSE 2013): compare
// per-block event sequences between a healthy "pseudo-cloud" HDFS run and
// a deployment run containing injected failures. Only sessions whose
// sequence never occurred in the baseline are reported — and the quality
// of that reduction depends on the log parser. Also demonstrates the
// Synoptic-style model construction on the same traces.
package main

import (
	"fmt"
	"log"

	"logparse"
)

func main() {
	baseline, err := logparse.GenerateHDFSSessions(logparse.HDFSSessionOptions{
		Seed: 3, Sessions: 1500, AnomalyRate: 0, // pseudo-cloud: healthy
	})
	if err != nil {
		log.Fatal(err)
	}
	deployed, err := logparse.GenerateHDFSSessions(logparse.HDFSSessionOptions{
		Seed: 4, Sessions: 1500, AnomalyRate: 0.05, // cloud: some failures
	})
	if err != nil {
		log.Fatal(err)
	}

	parser, err := logparse.NewParser("IPLoM", logparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := logparse.VerifyDeployment(baseline.Messages, deployed.Messages, parser)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline has %d distinct event sequences.\n", res.BaselineSequences)
	fmt.Printf("Deployment has %d sessions; %d diverge (%.1f%% of the log needs no inspection).\n",
		res.DeployedSessions, len(res.Divergent), 100*res.ReductionRatio)
	trueAnomalies := 0
	for _, d := range res.Divergent {
		if deployed.Labels[d.Session] {
			trueAnomalies++
		}
	}
	fmt.Printf("Of the divergent sessions, %d/%d are injected failures.\n\n",
		trueAnomalies, len(res.Divergent))

	// System-model construction on the baseline traces.
	parsed, err := parser.Parse(baseline.Messages)
	if err != nil {
		log.Fatal(err)
	}
	traces := logparse.EventTraces(baseline.Messages, parsed)
	model, err := logparse.BuildModel(traces, 1)
	if err != nil {
		log.Fatal(err)
	}
	invariants, err := logparse.MineInvariants(traces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synoptic-style model of the healthy system: %s, %d mined invariants.\n",
		model, len(invariants))
	fmt.Println("Sample invariants:")
	for i, iv := range invariants {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", iv)
	}
}
