// Quickstart: generate a labelled HDFS sample, parse it with each of the
// four algorithms, print the extracted events, and score every parse
// against the ground truth — the core loop of the toolkit.
package main

import (
	"fmt"
	"log"

	"logparse"
)

func main() {
	cat, err := logparse.Dataset("HDFS")
	if err != nil {
		log.Fatal(err)
	}
	msgs := cat.Generate(1, 2000)
	fmt.Printf("Generated %d HDFS log lines, e.g.:\n  %s\n\n", len(msgs), msgs[0].Content)

	for _, algo := range logparse.Algorithms() {
		opts := logparse.Options{Seed: 1}
		if algo == "LogSig" {
			opts.NumGroups = cat.NumEvents() // LogSig needs k up front
		}
		parser, err := logparse.NewParser(algo, opts)
		if err != nil {
			log.Fatal(err)
		}
		result, err := parser.Parse(msgs)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := logparse.EvaluateResult(msgs, result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s extracted %d events, F-measure %.2f\n",
			algo, len(result.Templates), acc.F)
	}

	// Show what one parse actually produces.
	parser, err := logparse.NewParser("IPLoM", logparse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := parser.Parse(msgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIPLoM events (top 5 by frequency):")
	counts, _ := result.EventCounts()
	for i := 0; i < len(result.Templates) && i < 5; i++ {
		best, bestN := -1, -1
		for j, n := range counts {
			if n > bestN {
				best, bestN = j, n
			}
		}
		fmt.Printf("  %5d× %s\n", bestN, result.Templates[best])
		counts[best] = -1
	}
}
