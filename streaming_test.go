package logparse_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"logparse"
)

func TestStreamEngineFacadeEndToEnd(t *testing.T) {
	cat, err := logparse.Dataset("Zookeeper")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := logparse.WriteMessages(&buf, cat.Generate(1, 2000)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	retrainer, err := logparse.NewStreamRetrainer("", logparse.Options{SupportFrac: 0.005}, logparse.RobustPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := logparse.NewStreamEngine(logparse.StreamConfig{
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		CheckpointDir:   t.TempDir(),
		Policy:          logparse.StreamBackpressure,
		CheckpointEvery: 500,
		RetrainBatch:    64,
		Retrainer:       retrainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Processed != 2000 || s.Templates == 0 || s.Matched == 0 {
		t.Fatalf("facade streaming run: %+v", s)
	}
	tmpls, counts := eng.Result()
	d := logparse.StreamDigest(tmpls, counts)
	if len(d) != 64 || strings.Trim(d, "0123456789abcdef") != "" {
		t.Fatalf("StreamDigest = %q, want a sha256 hex string", d)
	}
	if d != eng.Digest() {
		t.Fatal("StreamDigest over Result() disagrees with Engine.Digest")
	}
}

func TestStreamRetrainerRejectsUnknownPrimary(t *testing.T) {
	if _, err := logparse.NewStreamRetrainer("nope", logparse.Options{}, logparse.RobustPolicy{}); err == nil {
		t.Fatal("unknown primary algorithm should fail")
	}
}

func TestStreamEngineOnlineFacadeEndToEnd(t *testing.T) {
	cat, err := logparse.Dataset("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := logparse.WriteMessages(&buf, cat.Generate(3, 2000)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, algo := range []string{"Drain", "Spell"} {
		online, err := logparse.NewOnlineParser(algo, logparse.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := logparse.NewStreamEngine(logparse.StreamConfig{
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(data)), nil
			},
			CheckpointDir:   t.TempDir(),
			CheckpointEvery: 500,
			Online:          online,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		s := eng.Stats()
		if s.Processed != 2000 || s.Templates == 0 || s.Matched != s.Processed-s.Empty {
			t.Fatalf("%s online run: %+v", algo, s)
		}
		if s.OnlineParser != algo {
			t.Fatalf("Stats.OnlineParser = %q, want %s", s.OnlineParser, algo)
		}
	}
}

func TestNewOnlineParserRejectsBatchOnlyAlgorithms(t *testing.T) {
	for _, algo := range []string{"SLCT", "IPLoM", "LKE", "LogSig", "nope"} {
		if _, err := logparse.NewOnlineParser(algo, logparse.Options{}); err == nil {
			t.Errorf("NewOnlineParser(%s) accepted", algo)
		}
	}
}
