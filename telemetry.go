package logparse

import "logparse/internal/telemetry"

// Telemetry is an optional, self-contained observability handle: a
// race-safe metrics registry (counters, gauges, fixed-bucket histograms)
// plus lightweight hierarchical stage spans. One handle can be shared by
// any number of parsers (Options.Telemetry), robust chains
// (RobustPolicy.Telemetry) and stream engines (StreamConfig.Telemetry);
// everything they record lands in the same registry.
//
// A nil *Telemetry is fully valid and means "off": every method no-ops
// without allocating, so instrumented code pays nothing when telemetry is
// disabled. Handles are safe for concurrent use.
//
// Export paths: Snapshot() for a point-in-time copy, Report(tool) for the
// structured run report cmd/logparse and cmd/logeval emit with -report,
// and Var() for an expvar-compatible value served on /debug/vars (see
// cmd/logstreamd -debug-addr).
type Telemetry = telemetry.Handle

// TelemetrySnapshot is a point-in-time copy of a handle's metrics.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryReport is the structured run report: cumulative stage timings,
// recent span trees and a metric snapshot.
type TelemetryReport = telemetry.Report

// NewTelemetry creates an enabled telemetry handle.
func NewTelemetry() *Telemetry { return telemetry.New() }
