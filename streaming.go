package logparse

// Streaming ingestion (the long-running service layer). The paper's
// experiments are one-shot batch parses; a deployment types an unbounded
// stream and must survive crashes, overload and broken retraining. The
// StreamEngine tails a re-openable source, matches lines online against the
// known template set, buffers what no template covers, and retrains on that
// buffer through a robust degradation chain — with atomic checkpoints
// (template set, event counts, unmatched buffer, stream offset), a bounded
// admission ring (backpressure or load shedding), and a circuit breaker
// that degrades retraining to matcher-only service under repeated failure.

import (
	"fmt"
	"strings"

	"logparse/internal/core"
	"logparse/internal/parsers/drain"
	"logparse/internal/parsers/slct"
	"logparse/internal/parsers/spell"
	"logparse/internal/stream"
)

type (
	// StreamEngine is the crash-safe streaming ingester.
	StreamEngine = stream.Engine
	// StreamConfig configures a StreamEngine.
	StreamConfig = stream.Config
	// StreamStats is a point-in-time health snapshot of a StreamEngine.
	StreamStats = stream.Stats
	// StreamAdmissionPolicy selects backpressure vs load shedding when the
	// admission ring is full.
	StreamAdmissionPolicy = stream.AdmissionPolicy
	// StreamBreakerConfig configures the retrain circuit breaker.
	StreamBreakerConfig = stream.BreakerConfig
	// StreamRetrainer mines templates from batches of unmatched lines.
	StreamRetrainer = stream.Retrainer
	// StreamOnlineParser is a learn-per-line parser the engine can run on
	// its hot path instead of the match/buffer/retrain cycle.
	StreamOnlineParser = stream.OnlineParser
	// StreamCheckpointState is the persisted checkpoint payload.
	StreamCheckpointState = stream.State
	// StreamCorruptError reports an untrustworthy checkpoint file.
	StreamCorruptError = stream.CorruptError
)

// Admission policies for StreamConfig.Policy.
const (
	// StreamBackpressure blocks the source tail when the ring is full;
	// nothing is lost and crash recovery is deterministic.
	StreamBackpressure = stream.Backpressure
	// StreamLoadShed drops the incoming line when the ring is full and
	// counts it in StreamStats.Shed.
	StreamLoadShed = stream.LoadShed
)

// NewStreamEngine builds a streaming ingester, restoring the newest
// trustworthy checkpoint in cfg.CheckpointDir (a torn or corrupt current
// generation falls back to the previous one automatically):
//
//	eng, _ := logparse.NewStreamEngine(logparse.StreamConfig{
//		Open:          func() (io.ReadCloser, error) { return os.Open("app.log") },
//		CheckpointDir: "/var/lib/logstream",
//	})
//	err := eng.Run(ctx) // blocks; eng.Stats() is safe concurrently
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) {
	return stream.New(cfg)
}

// NewStreamRetrainer builds the default retrain chain: an optional primary
// mining algorithm (by registry name, configured from opts) degrading to
// the streaming SLCT tier. primary == "" yields the SLCT-only chain.
func NewStreamRetrainer(primary string, opts Options, pol RobustPolicy) (StreamRetrainer, error) {
	var p core.Parser
	if primary != "" {
		parser, err := NewParser(primary, opts)
		if err != nil {
			return nil, err
		}
		p = parser
	}
	return stream.NewRetrainer(pol, p, slct.StreamOptions{Options: slct.Options{
		Support:     opts.Support,
		SupportFrac: opts.SupportFrac,
	}})
}

// NewOnlineParser builds the online learner for a streaming-native
// algorithm ("Drain" or "Spell", case-insensitive), configured from the
// same Options the batch facade reads. Assign it to StreamConfig.Online:
// the engine then learns in place on the hot path and checkpoints the
// learner's state alongside the template counts, so kill-and-recover runs
// converge to an uninterrupted run's digest. Each engine needs its own
// instance — learners are not safe for concurrent use.
func NewOnlineParser(algorithm string, opts Options) (StreamOnlineParser, error) {
	switch strings.ToLower(algorithm) {
	case "drain":
		return drain.NewStream(drain.Options{
			Depth:        opts.Depth,
			SimThreshold: opts.SimThreshold,
			MaxChildren:  opts.MaxChildren,
			Telemetry:    opts.Telemetry,
		}), nil
	case "spell":
		return spell.NewStream(spell.Options{
			Tau:       opts.Tau,
			Telemetry: opts.Telemetry,
		}), nil
	default:
		return nil, fmt.Errorf("logparse: no online learner for %q (want Drain or Spell)", algorithm)
	}
}

// StreamDigest is the canonical digest of a streaming run's outcome (sorted
// rendered templates with their event counts); two runs with equal digests
// learned the same templates and attributed lines identically. See
// DESIGN.md "Streaming & recovery semantics".
func StreamDigest(templates []Template, counts []int64) string {
	return stream.Digest(templates, counts)
}
