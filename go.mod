module logparse

go 1.22
