package logparse

import (
	"context"
	"io"

	"logparse/internal/robust"
)

// Fault-tolerant parsing (the production execution layer). Parser cost is
// wildly uneven across algorithms (RQ2: LKE is Θ(n²), LogSig's local search
// can run orders of magnitude longer than SLCT/IPLoM on the same input), so
// a service typing live traffic wraps every parse in a RobustParser: panics
// become typed errors, each tier attempt runs under a deadline, transient
// source failures are retried with exponential backoff plus jitter, and on
// timeout or crash the parse degrades down a fallback chain — e.g.
// LogSig → IPLoM → SLCT → passthrough Matcher — recording which tier served
// the request.

type (
	// RobustParser is a fault-tolerant Parser: a degradation chain of
	// tiers executed under a RobustPolicy. Safe for concurrent use.
	RobustParser = robust.Parser
	// RobustPolicy configures per-tier deadlines and the retry schedule.
	RobustPolicy = robust.Policy
	// RobustTier is one level of a degradation chain.
	RobustTier = robust.Tier
	// ParseAttribution reports which tier served a parse and every failed
	// attempt along the way.
	ParseAttribution = robust.Attribution
	// RobustStats is a snapshot of a RobustParser's cumulative counters.
	RobustStats = robust.Stats
	// ParserPanicError is a parser panic recovered into an error.
	ParserPanicError = robust.PanicError
	// ParseTimeoutError reports a tier exceeding its per-parse deadline;
	// it unwraps to context.DeadlineExceeded.
	ParseTimeoutError = robust.TimeoutError
	// ParseChainError reports that every tier of a chain failed.
	ParseChainError = robust.ChainError
)

// NewRobustParser builds a fault-tolerant parser whose degradation chain
// tries the given algorithms in order (each configured from opts). Typical
// production chains order tiers from most to least accurate, ending with a
// cheap parser that cannot blow up, e.g.
//
//	p, _ := logparse.NewRobustParser([]string{"LogSig", "IPLoM", "SLCT"},
//		logparse.Options{NumGroups: 40},
//		logparse.RobustPolicy{Timeout: 2 * time.Second, MaxRetries: 2})
func NewRobustParser(algorithms []string, opts Options, pol RobustPolicy) (*RobustParser, error) {
	tiers := make([]RobustTier, 0, len(algorithms))
	for _, a := range algorithms {
		p, err := NewParser(a, opts)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, RobustTier{Parser: p})
	}
	return robust.New(pol, tiers...)
}

// NewRobustChain builds a fault-tolerant parser over explicit tiers, for
// chains mixing algorithm configurations or ending in MatcherTier.
func NewRobustChain(pol RobustPolicy, tiers ...RobustTier) (*RobustParser, error) {
	return robust.New(pol, tiers...)
}

// MatcherTier wraps a template matcher as a passthrough fallback tier: it
// types every message against the already-known template set in O(line
// length) and never fails (unmatched messages become outliers) — the tier
// of last resort when every mining parser times out or crashes.
func MatcherTier(m *Matcher) RobustTier { return robust.MatcherTier(m) }

// IsTransient reports whether err advertises itself as retryable via a
// Transient() bool method anywhere in its wrap chain.
func IsTransient(err error) bool { return robust.IsTransient(err) }

// RetryTransient runs op under pol's retry schedule until it succeeds,
// fails non-transiently, exhausts the retries, or ctx ends — the generic
// building block for flaky log sources.
func RetryTransient(ctx context.Context, pol RobustPolicy, op func(context.Context) error) error {
	return robust.Retry(ctx, pol, op)
}

// ReadMessagesRetry reads log messages from a re-openable source, retrying
// transient failures under pol; each retry re-opens the source from the
// start.
func ReadMessagesRetry(ctx context.Context, pol RobustPolicy, open func() (io.ReadCloser, error), opts ReadOptions) ([]Message, ReadStats, error) {
	return robust.ReadMessagesRetry(ctx, pol, open, opts)
}
