package logparse_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"logparse"
	"logparse/internal/faultinject"
)

func robustWorkload(n int) []logparse.Message {
	msgs := make([]logparse.Message, n)
	for i := range msgs {
		var l string
		if i%2 == 0 {
			l = fmt.Sprintf("opening file f%d now", i)
		} else {
			l = fmt.Sprintf("closing file f%d now", i)
		}
		msgs[i] = logparse.Message{LineNo: i + 1, Content: l, Tokens: logparse.Tokenize(l)}
	}
	return msgs
}

func TestNewRobustParserChain(t *testing.T) {
	p, err := logparse.NewRobustParser([]string{"IPLoM", "SLCT"},
		logparse.Options{}, logparse.RobustPolicy{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Name(); got != "Robust(IPLoM→SLCT)" {
		t.Errorf("Name() = %q", got)
	}
	msgs := robustWorkload(100)
	res, att, err := p.ParseAttributed(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(len(msgs)); err != nil {
		t.Fatal(err)
	}
	if att.Tier != 0 || att.Degraded {
		t.Errorf("healthy primary: served by tier %d (degraded=%v), want 0", att.Tier, att.Degraded)
	}
}

func TestNewRobustParserUnknownAlgorithm(t *testing.T) {
	_, err := logparse.NewRobustParser([]string{"IPLoM", "NoSuch"},
		logparse.Options{}, logparse.RobustPolicy{})
	if err == nil || !strings.Contains(err.Error(), "NoSuch") {
		t.Fatalf("err = %v, want unknown-algorithm error naming NoSuch", err)
	}
}

func TestNewRobustChainWithMatcherTier(t *testing.T) {
	m, err := logparse.NewMatcher(&logparse.Result{Templates: []logparse.Template{
		{ID: "E1", Tokens: []string{"opening", "file", logparse.Wildcard, "now"}},
		{ID: "E2", Tokens: []string{"closing", "file", logparse.Wildcard, "now"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := logparse.NewRobustChain(logparse.RobustPolicy{Timeout: 50 * time.Millisecond},
		logparse.RobustTier{Name: "hang", Parser: faultinject.NewHangParser(true)},
		logparse.MatcherTier(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	msgs := robustWorkload(40)
	_, att, err := p.ParseAttributed(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if att.TierName != "Matcher" || !att.Degraded {
		t.Errorf("served by %q (degraded=%v), want Matcher via degradation", att.TierName, att.Degraded)
	}
	var te *logparse.ParseTimeoutError
	if len(att.Attempts) == 0 || !errors.As(att.Attempts[0].Err, &te) {
		t.Errorf("first attempt error = %+v, want *ParseTimeoutError", att.Attempts)
	}
}

func TestRetryTransientFacade(t *testing.T) {
	calls := 0
	err := logparse.RetryTransient(context.Background(),
		logparse.RobustPolicy{MaxRetries: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
		func(context.Context) error {
			if calls++; calls < 3 {
				return &faultinject.InjectedError{}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
}

func TestReadMessagesRetryFacade(t *testing.T) {
	const data = "alpha beta\ngamma delta\n"
	opens := 0
	open := func() (io.ReadCloser, error) {
		opens++
		if opens == 1 {
			return io.NopCloser(faultinject.NewReader(strings.NewReader(data),
				faultinject.Faults{ErrAfterBytes: 5})), nil
		}
		return io.NopCloser(strings.NewReader(data)), nil
	}
	msgs, _, err := logparse.ReadMessagesRetry(context.Background(),
		logparse.RobustPolicy{MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
		open, logparse.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opens != 2 {
		t.Errorf("source opened %d times, want 2", opens)
	}
	if len(msgs) != 2 {
		t.Errorf("read %d messages, want 2", len(msgs))
	}
}
