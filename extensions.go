package logparse

import (
	"io"

	"logparse/internal/match"
	"logparse/internal/mining/deployver"
	"logparse/internal/mining/synoptic"
	"logparse/internal/parsers/parallel"
	"logparse/internal/parsers/slct"
)

// StreamResult is the outcome of a streaming SLCT parse: templates plus a
// compact per-line assignment (−1 = outlier). Message contents are never
// retained, so logs larger than memory parse in two sequential scans.
type StreamResult = slct.StreamResult

// ParseStreamSLCT runs two-pass SLCT over a re-openable source (open is
// called once per pass) with bounded memory. epsilon > 0 additionally
// bounds the vocabulary pass with Manku–Motwani lossy counting at that
// error rate; 0 keeps exact counting.
func ParseStreamSLCT(open func() (io.ReadCloser, error), opts Options, epsilon float64) (*StreamResult, error) {
	p := slct.New(slct.Options{Support: opts.Support, SupportFrac: opts.SupportFrac})
	return p.ParseStream(open, slct.StreamOptions{
		Options:      slct.Options{Support: opts.Support, SupportFrac: opts.SupportFrac},
		VocabEpsilon: epsilon,
	})
}

// Matcher applies an extracted template set to new log messages in
// O(message length) — the online half of the toolkit: parsers mine
// templates offline, a Matcher types live traffic in the ingest path.
type Matcher = match.Matcher

// ErrNoMatch is returned by Matcher.Match when no template covers a
// message.
var ErrNoMatch = match.ErrNoMatch

// NewMatcher builds a matcher from a parse result's templates.
func NewMatcher(res *Result) (*Matcher, error) { return match.FromResult(res) }

// Extensions beyond the paper's core study: the §V "potential direction"
// of distributed parsing, and the two additional §III-A log-mining tasks
// (deployment verification, system-model construction).

// NewParallelParser wraps an algorithm in the shard-and-merge harness of
// §V's distributed-parsing direction: the input is split into shards
// parsed concurrently, and per-shard templates are merged by identity.
// shards ≤ 0 uses GOMAXPROCS. A shard whose parser fails — even by
// panicking — fails the parse with a wrapped error instead of killing the
// process.
func NewParallelParser(algorithm string, shards int, opts Options) (Parser, error) {
	// Validate the configuration once up front.
	if _, err := NewParser(algorithm, opts); err != nil {
		return nil, err
	}
	return parallel.New(algorithm, shards, func(shard int) (Parser, error) {
		o := opts
		o.Seed = opts.Seed + int64(shard)
		return NewParser(algorithm, o)
	}), nil
}

// Deployment verification (Shang et al., ICSE 2013).
type (
	// DeployResult summarises a deployment-verification run.
	DeployResult = deployver.Result
	// DeployDivergence is one deployed session with an unseen sequence.
	DeployDivergence = deployver.Divergence
)

// VerifyDeployment compares per-session event sequences between a baseline
// (pseudo-cloud) log and a deployment log, reporting only the deployed
// sessions whose sequence never occurs in the baseline.
func VerifyDeployment(baseline, deployed []Message, parser Parser) (*DeployResult, error) {
	return deployver.Verify(baseline, deployed, parser)
}

// System-model construction (Beschastnikh et al., ESEC/FSE 2011).
type (
	// FSMModel is a k-tails finite-state model over event types.
	FSMModel = synoptic.Model
	// TemporalInvariant is one mined AFby/AP/NFby property.
	TemporalInvariant = synoptic.Invariant
)

// EventTraces groups parsed messages into per-session event-ID sequences.
func EventTraces(msgs []Message, parsed *Result) [][]string {
	return synoptic.TracesFromParse(msgs, parsed)
}

// MineInvariants mines Synoptic's three temporal invariant kinds over
// event traces.
func MineInvariants(traces [][]string) ([]TemporalInvariant, error) {
	return synoptic.MineInvariants(traces)
}

// BuildModel constructs a finite-state model from event traces by k-tails
// merging.
func BuildModel(traces [][]string, k int) (*FSMModel, error) {
	return synoptic.BuildModel(traces, k)
}
