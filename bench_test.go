// Benchmarks: one per table and figure of the paper's evaluation section,
// plus ablations for the design choices called out in DESIGN.md.
//
// The benches regenerate each experiment's *shape* at bench-friendly sizes
// (a benchmark iteration must stay in the seconds range on one core); the
// paper-scale numbers come from cmd/logeval and cmd/loganomaly. Quality
// metrics that a table reports alongside time (F-measure, false alarms)
// are emitted via b.ReportMetric, so `go test -bench` output reads like the
// corresponding table.
package logparse_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"logparse"
	"logparse/internal/conform"
	"logparse/internal/core"
	"logparse/internal/eval"
	"logparse/internal/experiments"
	"logparse/internal/gen"
	"logparse/internal/match"
	"logparse/internal/mining/anomaly"
	"logparse/internal/parsers/iplom"
	"logparse/internal/parsers/logsig"
	"logparse/internal/parsers/slct"
	"logparse/internal/tokenize"
)

// benchFactory builds the tuned parser for a (parser, dataset) pair.
func benchFactory(b *testing.B, parser, dataset string) eval.ParserFactory {
	b.Helper()
	f, err := experiments.Factory(parser, dataset)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// scoreParse parses msgs and returns the pairwise F-measure.
func scoreParse(b *testing.B, p core.Parser, msgs []core.LogMessage) float64 {
	b.Helper()
	res, err := p.Parse(msgs)
	if err != nil {
		b.Fatal(err)
	}
	truth := make([]string, len(msgs))
	for i := range msgs {
		truth[i] = msgs[i].TruthID
	}
	m, err := eval.FMeasure(res.ClusterIDs(), truth)
	if err != nil {
		b.Fatal(err)
	}
	return m.F
}

// BenchmarkTable1DatasetSummary regenerates Table I (dataset inventory).
func BenchmarkTable1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2ParsingAccuracy regenerates Table II: each sub-benchmark
// is one (parser, dataset) cell on the 2k sample; fmeasure is the cell
// value (raw variant).
func BenchmarkTable2ParsingAccuracy(b *testing.B) {
	const sample = 2000
	for _, parser := range experiments.ParserNames {
		for _, dataset := range gen.Names {
			if parser == "LKE" && sample > 1000 {
				// Keep LKE's quadratic pass at bench-friendly size.
				continue
			}
			b.Run(parser+"/"+dataset, func(b *testing.B) {
				cat, err := gen.ByName(dataset)
				if err != nil {
					b.Fatal(err)
				}
				msgs := cat.Generate(42, sample)
				factory := benchFactory(b, parser, dataset)
				var f float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f = scoreParse(b, factory(1), msgs)
				}
				b.ReportMetric(f, "fmeasure")
			})
		}
	}
	for _, dataset := range gen.Names {
		b.Run("LKE/"+dataset, func(b *testing.B) {
			cat, err := gen.ByName(dataset)
			if err != nil {
				b.Fatal(err)
			}
			msgs := cat.Generate(42, 1000)
			factory := benchFactory(b, "LKE", dataset)
			var f float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, factory(1), msgs)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkFig2Efficiency regenerates Fig. 2: running time of each parser
// as the input grows. ns/op across the size ladder IS the figure's series.
func BenchmarkFig2Efficiency(b *testing.B) {
	sizes := []int{400, 2000, 10000}
	for _, dataset := range gen.Names {
		for _, parser := range experiments.ParserNames {
			for _, n := range sizes {
				if parser == "LKE" && n > 2000 {
					continue // Fig. 2 leaves LKE's large points unplotted
				}
				if parser == "LogSig" && n > 2000 {
					continue // keep the slowest cell in bench range
				}
				name := fmt.Sprintf("%s/%s/%d", dataset, parser, n)
				b.Run(name, func(b *testing.B) {
					cat, err := gen.ByName(dataset)
					if err != nil {
						b.Fatal(err)
					}
					msgs := cat.Generate(42, n)
					factory := benchFactory(b, parser, dataset)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := factory(1).Parse(msgs); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig3AccuracyVsSize regenerates Fig. 3: accuracy with parameters
// frozen from the 2k tuning sample, as volume grows.
func BenchmarkFig3AccuracyVsSize(b *testing.B) {
	sizes := []int{400, 2000, 10000}
	for _, dataset := range []string{"BGL", "HDFS"} { // representative panels
		for _, parser := range []string{"SLCT", "IPLoM", "LogSig"} {
			for _, n := range sizes {
				if parser == "LogSig" && n > 2000 {
					continue
				}
				name := fmt.Sprintf("%s/%s/%d", dataset, parser, n)
				b.Run(name, func(b *testing.B) {
					cat, err := gen.ByName(dataset)
					if err != nil {
						b.Fatal(err)
					}
					msgs := cat.Generate(42, n)
					factory := benchFactory(b, parser, dataset)
					var f float64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						f = scoreParse(b, factory(1), msgs)
					}
					b.ReportMetric(f, "fmeasure")
				})
			}
		}
	}
}

// BenchmarkTable3AnomalyDetection regenerates Table III: the RQ3 anomaly
// detection pipeline per parser. detected/falsealarms per run are the
// table's columns (at bench scale).
func BenchmarkTable3AnomalyDetection(b *testing.B) {
	data, err := gen.GenerateHDFSSessions(gen.HDFSOptions{Seed: 11, Sessions: 2000, AnomalyRate: 0.0293})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, parsed *core.ParseResult) anomaly.Report {
		res, err := anomaly.Detect(data.Messages, parsed, anomaly.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		return anomaly.Evaluate(res, data.Labels)
	}
	parsers := map[string]core.Parser{
		"SLCT":   slct.New(slct.Options{SupportFrac: 0.0028}),
		"LogSig": logsig.New(logsig.Options{NumGroups: 40, Seed: 1}),
		"IPLoM":  iplom.New(iplom.Options{}),
	}
	for name, p := range parsers {
		b.Run(name, func(b *testing.B) {
			var rep anomaly.Report
			for i := 0; i < b.N; i++ {
				parsed, err := p.Parse(data.Messages)
				if err != nil {
					b.Fatal(err)
				}
				rep = run(b, parsed)
			}
			b.ReportMetric(float64(rep.Detected), "detected")
			b.ReportMetric(float64(rep.FalseAlarms), "falsealarms")
		})
	}
	b.Run("GroundTruth", func(b *testing.B) {
		var rep anomaly.Report
		for i := 0; i < b.N; i++ {
			rep = run(b, gen.TruthResult(data.Messages))
		}
		b.ReportMetric(float64(rep.Detected), "detected")
		b.ReportMetric(float64(rep.FalseAlarms), "falsealarms")
	})
}

// BenchmarkAblationPreprocessing isolates Finding 2: the same parser with
// and without domain-knowledge preprocessing.
func BenchmarkAblationPreprocessing(b *testing.B) {
	cat := gen.BGL()
	msgs := cat.Generate(42, 2000)
	pre := tokenize.ForDataset("BGL").Apply(msgs)
	factory := benchFactory(b, "LogSig", "BGL")
	for _, variant := range []struct {
		name string
		in   []core.LogMessage
	}{{"raw", msgs}, {"preprocessed", pre}} {
		b.Run(variant.name, func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, factory(1), variant.in)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkAblationSLCTSupport sweeps SLCT's only knob.
func BenchmarkAblationSLCTSupport(b *testing.B) {
	msgs := gen.HDFS().Generate(42, 5000)
	for _, support := range []int{5, 20, 100, 500} {
		b.Run(fmt.Sprintf("support=%d", support), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, slct.New(slct.Options{Support: support}), msgs)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkAblationIPLoM sweeps the cluster-goodness threshold, the knob
// that decides how early partitions stop splitting.
func BenchmarkAblationIPLoM(b *testing.B) {
	msgs := gen.BGL().Generate(42, 5000)
	for _, cgt := range []float64{0.3, 0.575, 0.9} {
		b.Run(fmt.Sprintf("goodness=%v", cgt), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, iplom.New(iplom.Options{ClusterGoodness: cgt}), msgs)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkAblationLogSigK sweeps k, the Finding 4 tuning target.
func BenchmarkAblationLogSigK(b *testing.B) {
	msgs := gen.Zookeeper().Generate(42, 2000)
	for _, k := range []int{20, 60, 120} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, logsig.New(logsig.Options{NumGroups: k, Seed: 1}), msgs)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkAblationPCA sweeps the detector's α and variance fraction.
func BenchmarkAblationPCA(b *testing.B) {
	data, err := gen.GenerateHDFSSessions(gen.HDFSOptions{Seed: 11, Sessions: 2000, AnomalyRate: 0.0293})
	if err != nil {
		b.Fatal(err)
	}
	gt := gen.TruthResult(data.Messages)
	cm, err := anomaly.BuildMatrix(data.Messages, gt)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []anomaly.Options{
		{Alpha: 0.001, VarianceFraction: 0.95},
		{Alpha: 0.01, VarianceFraction: 0.95},
		{Alpha: 0.001, VarianceFraction: 0.90},
	} {
		name := fmt.Sprintf("alpha=%v/var=%v", cfg.Alpha, cfg.VarianceFraction)
		b.Run(name, func(b *testing.B) {
			var rep anomaly.Report
			for i := 0; i < b.N; i++ {
				res, err := anomaly.DetectMatrix(cm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep = anomaly.Evaluate(res, data.Labels)
			}
			b.ReportMetric(float64(rep.Detected), "detected")
			b.ReportMetric(float64(rep.FalseAlarms), "falsealarms")
		})
	}
}

// BenchmarkAblationParallel compares sequential and sharded parsing (§V's
// distributed-parsing direction) in both time and accuracy.
func BenchmarkAblationParallel(b *testing.B) {
	msgs := gen.HDFS().Generate(42, 20000)
	b.Run("sequential", func(b *testing.B) {
		var f float64
		for i := 0; i < b.N; i++ {
			f = scoreParse(b, iplom.New(iplom.Options{}), msgs)
		}
		b.ReportMetric(f, "fmeasure")
	})
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := logparse.NewParallelParser("IPLoM", shards, logparse.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var f float64
			for i := 0; i < b.N; i++ {
				f = scoreParse(b, p, msgs)
			}
			b.ReportMetric(f, "fmeasure")
		})
	}
}

// BenchmarkStreamingSLCT compares the in-memory parser against the
// two-pass streaming implementation (exact and lossy-counted vocabulary) —
// the bounded-memory path for paper-scale logs.
func BenchmarkStreamingSLCT(b *testing.B) {
	msgs := gen.HDFS().Generate(42, 20000)
	var buf bytes.Buffer
	if err := core.WriteMessages(&buf, msgs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := slct.New(slct.Options{Support: 100}).Parse(msgs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := logparse.ParseStreamSLCT(open, logparse.Options{Support: 100}, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-lossy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := logparse.ParseStreamSLCT(open, logparse.Options{Support: 100}, 0.0005)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMatcherThroughput measures the online matcher's lines/second —
// the ingest-path cost of applying mined templates.
func BenchmarkMatcherThroughput(b *testing.B) {
	msgs := gen.HDFS().Generate(42, 5000)
	parsed, err := iplom.New(iplom.Options{}).Parse(msgs)
	if err != nil {
		b.Fatal(err)
	}
	m, err := match.FromResult(parsed)
	if err != nil {
		b.Fatal(err)
	}
	fresh := gen.HDFS().Generate(43, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range fresh {
			_, _ = m.Match(fresh[j].Tokens)
		}
	}
	b.ReportMetric(float64(len(fresh)), "lines/op")
}

// BenchmarkConformSuite measures what the conformance harness adds on top
// of a plain parse: canonicalization, the clustering signature, and the
// SHA-256 digest that golden files freeze. The "overhead-%" metric is the
// harness cost as a percentage of the bare parse — it is the price every
// differential/golden check pays per cell, and it must stay a small
// fraction of the parse itself.
func BenchmarkConformSuite(b *testing.B) {
	for _, tc := range []struct{ parser, dataset string }{
		{"SLCT", "HDFS"},
		{"IPLoM", "BGL"},
	} {
		factory := benchFactory(b, tc.parser, tc.dataset)
		cat, err := gen.ByName(tc.dataset)
		if err != nil {
			b.Fatal(err)
		}
		msgs := cat.Generate(42, 2000)
		b.Run(tc.parser+"/"+tc.dataset+"/parse-only", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := factory(1).Parse(msgs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.parser+"/"+tc.dataset+"/parse+digest", func(b *testing.B) {
			parseNS := benchNSPerOp(b, func() {
				if _, err := factory(1).Parse(msgs); err != nil {
					b.Fatal(err)
				}
			})
			res, err := factory(1).Parse(msgs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				canon := conform.MergeEqualTemplates(res).Canonical()
				if d := conform.Digest(canon); d == "" {
					b.Fatal("empty digest")
				}
			}
			b.StopTimer()
			harnessNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if parseNS > 0 {
				b.ReportMetric(100*harnessNS/parseNS, "overhead-%")
			}
		})
	}
}

// benchNSPerOp times fn outside the benchmark's own loop, for overhead
// ratios.
func benchNSPerOp(b *testing.B, fn func()) float64 {
	b.Helper()
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / reps
}
