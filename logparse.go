// Package logparse is an open-source toolkit of automated log parsers and
// the evaluation/log-mining machinery around them, reproducing "An
// Evaluation Study on Log Parsing and Its Use in Log Mining" (He, Zhu, He,
// Li, Lyu — DSN 2016).
//
// The toolkit packages six widely used log parsers behind one interface:
//
//   - SLCT   (Vaarandi, IPOM 2003) — frequent-word clustering
//   - IPLoM  (Makanju et al., KDD 2009) — iterative hierarchical partitioning
//   - LKE    (Fu et al., ICDM 2009) — weighted-edit-distance clustering
//   - LogSig (Tang et al., CIKM 2011) — message-signature local search
//   - Drain  (He et al., ICWS 2017) — fixed-depth prefix-tree clustering
//   - Spell  (Du & Li, ICDM 2016) — LCS-based streaming template extraction
//
// Drain and Spell are streaming-native: besides the batch Parse surface
// they expose online learners (see NewOnlineParser in streaming.go) that
// the stream engine runs directly on its ingest hot path, learning
// per-line with no retrain cycle.
//
// plus the five evaluation datasets of the paper (as synthetic generators
// with exact ground truth), pairwise F-measure scoring, preprocessing
// rules, and the PCA-based anomaly-detection pipeline of Xu et al.
// (SOSP 2009) used to study how parsing quality affects log mining.
//
// # Quickstart
//
//	msgs, _ := logparse.Dataset("HDFS")            // built-in dataset
//	sample := msgs.Generate(1, 2000)               // 2k labelled lines
//	parser, _ := logparse.NewParser("IPLoM", logparse.Options{})
//	result, _ := parser.Parse(sample)
//	for _, t := range result.Templates {
//		fmt.Println(t.ID, t)
//	}
//
// # Cancellation and fault tolerance
//
// Every Parser also implements ParseCtx(ctx, msgs), which checks ctx
// cooperatively inside each algorithm's hot loop (LKE's Θ(n²) clustering,
// LogSig's local-search sweeps, IPLoM's partition recursion, SLCT's two
// passes), so a deadline or cancellation interrupts even a parse that
// would otherwise run for hours. Parse(msgs) is shorthand for ParseCtx
// with context.Background(). For unattended production use, wrap parsers
// in a RobustParser (see NewRobustParser): panic isolation, per-tier
// deadlines, transient-failure retries, and a degradation chain.
package logparse

import (
	"fmt"
	"strings"

	"logparse/internal/core"
	"logparse/internal/parsers/drain"
	"logparse/internal/parsers/iplom"
	"logparse/internal/parsers/lke"
	"logparse/internal/parsers/logsig"
	"logparse/internal/parsers/slct"
	"logparse/internal/parsers/spell"
)

// Core model types, re-exported from the toolkit's data model.
type (
	// Message is a single raw log message.
	Message = core.LogMessage
	// Template is an extracted log event with wildcards at variable
	// positions.
	Template = core.Template
	// Result is a parser's output: templates plus per-message assignment.
	Result = core.ParseResult
	// Parser is the interface implemented by every algorithm.
	Parser = core.Parser
)

// Wildcard is the variable-position marker in templates.
const Wildcard = core.Wildcard

// OutlierID marks messages a parser left unassigned.
const OutlierID = core.OutlierID

// ErrNoMessages is returned by parsers on empty input.
var ErrNoMessages = core.ErrNoMessages

// Options carries the union of all parser parameters; each algorithm reads
// only its own fields and falls back to its published defaults for zero
// values. See the paper's §II-B for what each knob controls.
type Options struct {
	// Seed drives randomised algorithms (LKE threshold sampling, LogSig
	// initialisation).
	Seed int64

	// Support is SLCT's absolute support threshold; SupportFrac expresses
	// it as a fraction of the input when Support is 0.
	Support     int
	SupportFrac float64

	// FileSupport, PartitionSupport, LowerBound, UpperBound,
	// ClusterGoodness, VariableRatio and MappingRatio are IPLoM's
	// thresholds.
	FileSupport      float64
	PartitionSupport float64
	LowerBound       float64
	UpperBound       float64
	ClusterGoodness  float64
	VariableRatio    float64
	MappingRatio     float64

	// Threshold, Nu, SplitRatio and MaxMessages configure LKE. MaxMessages
	// guards LKE's Θ(n²) clustering; Parse fails beyond it.
	Threshold   float64
	Nu          float64
	SplitRatio  float64
	MaxMessages int

	// NumGroups is LogSig's k (required for LogSig); MaxIterations caps
	// its local search; Restarts reruns it from several initialisations
	// keeping the highest-potential solution.
	NumGroups     int
	MaxIterations int
	Restarts      int

	// Depth, SimThreshold and MaxChildren configure Drain's prefix tree
	// (tree depth, leaf similarity threshold, per-node fan-out cap).
	Depth        int
	SimThreshold float64
	MaxChildren  int

	// Tau is Spell's LCS acceptance threshold in (0,1].
	Tau float64

	// Telemetry, when non-nil, instruments the built parser with stage
	// spans, parse counters and duration histograms (see NewTelemetry).
	// Nil — the zero value — leaves the parser uninstrumented at zero
	// cost.
	Telemetry *Telemetry
}

// Algorithms lists the available parser names: the paper's four in its
// order, then the streaming-native additions.
func Algorithms() []string { return []string{"SLCT", "IPLoM", "LKE", "LogSig", "Drain", "Spell"} }

// NewParser builds a parser by algorithm name (case-insensitive).
func NewParser(algorithm string, opts Options) (Parser, error) {
	switch strings.ToLower(algorithm) {
	case "slct":
		return slct.New(slct.Options{
			Support:     opts.Support,
			SupportFrac: opts.SupportFrac,
			Telemetry:   opts.Telemetry,
		}), nil
	case "iplom":
		return iplom.New(iplom.Options{
			FileSupport:      opts.FileSupport,
			PartitionSupport: opts.PartitionSupport,
			LowerBound:       opts.LowerBound,
			UpperBound:       opts.UpperBound,
			ClusterGoodness:  opts.ClusterGoodness,
			VariableRatio:    opts.VariableRatio,
			MappingRatio:     opts.MappingRatio,
			Telemetry:        opts.Telemetry,
		}), nil
	case "lke":
		return lke.New(lke.Options{
			Threshold:   opts.Threshold,
			Nu:          opts.Nu,
			SplitRatio:  opts.SplitRatio,
			Seed:        opts.Seed,
			MaxMessages: opts.MaxMessages,
			Telemetry:   opts.Telemetry,
		}), nil
	case "logsig":
		if opts.NumGroups <= 0 {
			return nil, fmt.Errorf("logparse: LogSig requires Options.NumGroups > 0")
		}
		return logsig.New(logsig.Options{
			NumGroups:     opts.NumGroups,
			MaxIterations: opts.MaxIterations,
			Seed:          opts.Seed,
			Restarts:      opts.Restarts,
			Telemetry:     opts.Telemetry,
		}), nil
	case "drain":
		return drain.New(drain.Options{
			Depth:        opts.Depth,
			SimThreshold: opts.SimThreshold,
			MaxChildren:  opts.MaxChildren,
			Telemetry:    opts.Telemetry,
		}), nil
	case "spell":
		return spell.New(spell.Options{
			Tau:       opts.Tau,
			Telemetry: opts.Telemetry,
		}), nil
	default:
		return nil, fmt.Errorf("logparse: unknown algorithm %q (want one of %s)",
			algorithm, strings.Join(Algorithms(), ", "))
	}
}

// Tokenize splits raw message content into the toolkit's canonical tokens.
func Tokenize(content string) []string { return core.Tokenize(content) }

// CanonicalResult returns a parse result in canonical form — templates
// sorted by rendered string, re-identified as "T1".."Tn", assignments
// remapped — so that results from different execution modes (serial,
// sharded, robust-chain) of the same algorithm compare byte-identically
// and conformance digests (see internal/conform and cmd/conformgen) are
// stable. Shorthand for res.Canonical().
func CanonicalResult(res *Result) *Result { return res.Canonical() }
