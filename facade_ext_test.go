package logparse

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRenderRawLinesAndStripHeader(t *testing.T) {
	cat, err := Dataset("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(1, 50)
	start := time.Date(2008, 11, 9, 20, 0, 0, 0, time.UTC)
	lines, err := RenderRawLines("HDFS", msgs, 7, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 50 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		content, err := StripHeader("HDFS", line)
		if err != nil {
			t.Fatal(err)
		}
		if content != msgs[i].Content {
			t.Fatalf("line %d: Strip(Render) = %q, want %q", i, content, msgs[i].Content)
		}
		if !strings.Contains(line, "INFO") {
			t.Fatalf("line %d has no header: %q", i, line)
		}
	}
}

func TestRenderRawLinesUnknownDataset(t *testing.T) {
	if _, err := RenderRawLines("nope", nil, 1, time.Now()); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := StripHeader("nope", "x"); err == nil {
		t.Error("unknown dataset accepted by StripHeader")
	}
}

func TestRawLineTimestampsMonotonic(t *testing.T) {
	cat, err := Dataset("Zookeeper")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(2, 20)
	start := time.Date(2015, 7, 29, 17, 0, 0, 0, time.UTC)
	lines, err := RenderRawLines("Zookeeper", msgs, 3, start)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	for i, line := range lines {
		tsPart := strings.SplitN(line, " - ", 2)[0]
		ts, err := time.Parse("2006-01-02 15:04:05,000", tsPart)
		if err != nil {
			t.Fatalf("line %d timestamp %q: %v", i, tsPart, err)
		}
		if ts.Before(prev) {
			t.Fatalf("timestamps not monotone at line %d", i)
		}
		prev = ts
	}
}

func TestMatcherFacade(t *testing.T) {
	cat, err := Dataset("HDFS")
	if err != nil {
		t.Fatal(err)
	}
	msgs := cat.Generate(5, 3000)
	parser, err := NewParser("IPLoM", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := parser.Parse(msgs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(mined)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh traffic from the same system should type almost completely.
	fresh := cat.Generate(6, 3000)
	matched := 0
	for i := range fresh {
		if _, err := m.Match(fresh[i].Tokens); err == nil {
			matched++
		} else if !errors.Is(err, ErrNoMatch) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if matched < 2700 {
		t.Errorf("only %d/3000 fresh lines matched", matched)
	}
}
