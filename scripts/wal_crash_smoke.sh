#!/bin/sh
# WAL crash smoke: the zero-acked-loss contract, end to end over the wire.
# Start logstreamd with -wal, feed one tenant in small HTTP batches while a
# background kill -9 lands at a randomized batch offset, restart over the
# same root, and — BEFORE any client replay — require the recovered offset
# to cover every line whose batch was acknowledged with HTTP 200. Repeat
# for several iterations over the same root (each crash compounds on the
# last recovery), then replay the full stream and require the digest of an
# uninterrupted run.
#
#   scripts/wal_crash_smoke.sh [ITERATIONS] [LINES]    defaults 10 / 3000
#
# Kill offsets are drawn from a per-iteration seeded PRNG, so a failure
# reproduces by rerunning with the same arguments. Run from the repository
# root (scripts/verify.sh does). Exits non-zero on any acked-line loss or
# digest divergence.
set -eu

cd "$(dirname "$0")/.."

ITERS="${1:-10}"
LINES="${2:-3000}"
BATCH=50

work="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> building logstreamd"
go build -o "$work/logstreamd" ./cmd/logstreamd

# One deterministic tenant stream, pre-split into the batches the feeder
# acknowledges one at a time.
awk -v n="$LINES" 'BEGIN { for (i = 1; i <= n; i++)
	printf "session %d opened for user u%d from 172.16.%d.%d\n", i, i % 23, i % 13, i % 200 }' >"$work/t.log"
mkdir "$work/batches"
split -l "$BATCH" -a 4 "$work/t.log" "$work/batches/b"
nbatches=$(( (LINES + BATCH - 1) / BATCH ))

# start_server ROOT: launches the daemon with the WAL on and sets
# $server_pid and $addr.
start_server() {
	rm -f "$work/addr"
	"$work/logstreamd" -listen 127.0.0.1:0 -listen-addr-file "$work/addr" \
		-checkpoint-dir "$1" -wal -shards 2 -checkpoint-every 200 -retrain-batch 64 \
		>>"$work/server.out" 2>>"$work/server.err" &
	server_pid=$!
	for _ in $(seq 1 100); do
		[ -s "$work/addr" ] && break
		sleep 0.05
	done
	[ -s "$work/addr" ] || { echo "wal_crash_smoke: FAIL: server never bound" >&2; cat "$work/server.err" >&2; exit 1; }
	addr="$(head -n1 "$work/addr")"
}

stop_server() {
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	server_pid=""
}

post() { # post FILE -> 0 on HTTP 200
	code="$(curl -s -o "$work/post.out" -w '%{http_code}' --data-binary @"$1" \
		"http://$addr/v1/ingest?tenant=t" 2>/dev/null)" || return 1
	[ "$code" = 200 ]
}

offset_of() {
	curl -s "http://$addr/v1/tenants/t/stats" 2>/dev/null | grep -o '"Offset":[0-9]*' | head -n1 | cut -d: -f2
}

digest_of() {
	curl -s "http://$addr/v1/tenants/t/stats" | grep -o '"digest":"[^"]*"' | cut -d'"' -f4
}

wait_offset_at_least() { # wait_offset_at_least N WHY
	for _ in $(seq 1 200); do
		off="$(offset_of || true)"
		[ -n "$off" ] && [ "$off" -ge "$1" ] && return 0
		sleep 0.05
	done
	echo "wal_crash_smoke: FAIL: $2: offset ${off:-?} never reached $1" >&2
	cat "$work/server.err" >&2
	exit 1
}

echo "==> uninterrupted reference run"
start_server "$work/ref"
post "$work/t.log" || { echo "wal_crash_smoke: FAIL: reference ingest:" >&2; cat "$work/post.out" >&2; exit 1; }
wait_offset_at_least "$LINES" "reference run"
want="$(digest_of)"
stop_server
[ -n "$want" ] || { echo "wal_crash_smoke: FAIL: empty reference digest" >&2; exit 1; }

root="$work/live"
i=1
while [ "$i" -le "$ITERS" ]; do
	# The kill arms after a seeded-random acknowledged batch and lands a
	# random beat later — mid-batch, mid-fsync, wherever the race falls.
	arm="$(awk -v s="$i" -v n="$nbatches" 'BEGIN { srand(s * 7919); print 2 + int(rand() * (n - 4)) }')"
	lag="$(awk -v s="$i" 'BEGIN { srand(s * 104729); printf "%.3f", rand() * 0.15 }')"

	start_server "$root"
	acked=0
	n=0
	for f in "$work"/batches/b*; do
		post "$f" || break
		n=$((n + 1))
		acked=$((n * BATCH))
		if [ "$n" -eq "$arm" ]; then
			( sleep "$lag"; kill -9 "$server_pid" 2>/dev/null ) &
		fi
	done
	stop_server

	# Restart over the same root: the WAL replay alone must cover every
	# acknowledged line — the client has not replayed anything yet.
	start_server "$root"
	wait_offset_at_least "$acked" "iteration $i lost acked lines (acked=$acked)"
	curl -s "http://$addr/v1/tenants/t/stats" | grep -q '"WALEnabled":true' || {
		echo "wal_crash_smoke: FAIL: tenant recovered without a WAL" >&2
		exit 1
	}
	echo "    iteration $i: armed after batch $arm/$nbatches, acked $acked, recovered $(offset_of)"
	stop_server
	i=$((i + 1))
done

echo "==> full replay over the crash-scarred root"
start_server "$root"
post "$work/t.log" || { echo "wal_crash_smoke: FAIL: replay ingest:" >&2; cat "$work/post.out" >&2; exit 1; }
wait_offset_at_least "$LINES" "full replay"
got="$(digest_of)"
if [ "$got" != "$want" ]; then
	echo "wal_crash_smoke: FAIL: digest after $ITERS crashes = $got, want $want" >&2
	exit 1
fi
stop_server

echo "wal_crash_smoke: OK ($ITERS crash cycles, digest $got)"
