#!/bin/sh
# Telemetry smoke: start logstreamd with an ephemeral debug endpoint, ingest
# a small generated dataset, and probe /debug/vars + /debug/pprof from the
# outside (scripts/debugprobe, stdlib-only — no curl dependency). Verifies
# the live-metrics path end to end: expvar publication, the stream.*
# counters actually moving, and the pprof mux being mounted.
#
# Run from the repository root (scripts/verify.sh does). Exits non-zero on
# any failure.
set -eu

cd "$(dirname "$0")/.."

DATASET="${1:-Zookeeper}"
LINES="${2:-3000}"

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -INT "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> building logstreamd + debugprobe"
go build -o "$work/logstreamd" ./cmd/logstreamd
go build -o "$work/debugprobe" ./scripts/debugprobe

echo "==> starting logstreamd (-debug-addr 127.0.0.1:0 -linger)"
"$work/logstreamd" -dataset "$DATASET" -lines "$LINES" \
	-checkpoint-dir "$work/ck" \
	-debug-addr 127.0.0.1:0 -debug-addr-file "$work/addr" -linger \
	>"$work/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon writes its bound address once the listener is up.
i=0
while [ ! -s "$work/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "telemetry_smoke: debug address file never appeared" >&2
		cat "$work/daemon.log" >&2 || true
		exit 1
	fi
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "telemetry_smoke: logstreamd exited before serving" >&2
		cat "$work/daemon.log" >&2 || true
		exit 1
	fi
	sleep 0.2
done
addr="$(cat "$work/addr")"

echo "==> probing http://$addr/debug/vars (want stream.processed >= $LINES)"
"$work/debugprobe" -addr "$addr" -min-processed "$LINES"

kill -INT "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "telemetry_smoke: OK"
