#!/bin/sh
# Benchmark snapshot: run the streaming-ingest and server-loopback
# benchmarks and write a committable JSON snapshot (lines/sec, allocs/op,
# ckpt-B/op per benchmark) so throughput can be tracked PR over PR.
#
#   scripts/bench_snapshot.sh [OUT.json]     default OUT: BENCH_PR6.json
#
# Benchmarks run once each (-benchtime=1x keeps the snapshot cheap enough
# for CI; raise BENCHTIME for stabler numbers, e.g. BENCHTIME=5s).
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR6.json}"
BENCHTIME="${BENCHTIME:-1x}"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "==> go test -bench BenchmarkStreamIngest ./internal/stream (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkStreamIngest$|^BenchmarkStreamIngestTelemetry$' \
	-benchtime "$BENCHTIME" ./internal/stream | tee "$work/bench.txt"

echo "==> go test -bench BenchmarkServerLoopback ./internal/server (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkServerLoopback$' \
	-benchtime "$BENCHTIME" ./internal/server | tee -a "$work/bench.txt"

go run ./cmd/benchjson -label "pr6-server" -commit "$commit" \
	<"$work/bench.txt" >"$OUT"

echo "bench_snapshot: wrote $OUT"
