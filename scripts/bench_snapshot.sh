#!/bin/sh
# Benchmark snapshot: run the streaming-ingest and server-loopback
# benchmarks and write a committable JSON snapshot (lines/sec, allocs/op,
# ckpt-B/op per benchmark) so throughput can be tracked PR over PR.
#
#   scripts/bench_snapshot.sh [OUT.json]     default OUT: BENCH_PR10.json
#
# LABEL sets the label recorded in the document (default pr10-online-parsers).
# Benchmarks run three iterations each (-benchtime=3x): one iteration is
# hostage to scheduler noise on shared runners and still carries one-time
# warm-up allocations; three average that out while staying cheap enough
# for CI. bench_check.sh compares fresh runs against the committed snapshot
# and must use the same protocol. Raise BENCHTIME for stabler local
# numbers, e.g. BENCHTIME=5s.
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
LABEL="${LABEL:-pr10-online-parsers}"
BENCHTIME="${BENCHTIME:-3x}"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "==> go test -bench 'BenchmarkStream(Ingest|PushBatch)|Benchmark(Drain|Spell)Ingest' ./internal/stream (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkStreamIngest$|^BenchmarkStreamIngestTelemetry$|^BenchmarkStreamIngestEventStore$|^BenchmarkStreamPushBatch$|^BenchmarkStreamPushBatchWAL$|^BenchmarkDrainIngest$|^BenchmarkSpellIngest$' \
	-benchtime "$BENCHTIME" ./internal/stream | tee "$work/bench.txt"

echo "==> go test -bench BenchmarkServerLoopback ./internal/server (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkServerLoopback$|^BenchmarkServerLoopbackWAL$' \
	-benchtime "$BENCHTIME" ./internal/server | tee -a "$work/bench.txt"

echo "==> go test -bench BenchmarkEventStoreQuery ./internal/eventstore (benchtime $BENCHTIME)"
go test -run '^$' -bench '^BenchmarkEventStoreQuery$' \
	-benchtime "$BENCHTIME" ./internal/eventstore | tee -a "$work/bench.txt"

go run ./cmd/benchjson -label "$LABEL" -commit "$commit" \
	<"$work/bench.txt" >"$OUT"

echo "bench_snapshot: wrote $OUT"
