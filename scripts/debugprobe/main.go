// Command debugprobe checks a running logstreamd debug endpoint. It polls
// /debug/vars until the published logstream expvar reports at least
// -min-processed stream.processed lines (or the deadline expires), then
// requires /debug/pprof/cmdline to answer 200. Used by
// scripts/telemetry_smoke.sh; exits non-zero on any failure so the smoke
// fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

type debugVars struct {
	Logstream struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	} `json:"logstream"`
}

func fetchVars(url string) (*debugVars, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var v debugVars
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &v, nil
}

func main() {
	addr := flag.String("addr", "", "host:port of the debug server (required)")
	minProcessed := flag.Uint64("min-processed", 1, "wait until stream.processed reaches this count")
	timeout := flag.Duration("timeout", 15*time.Second, "overall probe deadline")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "debugprobe: -addr is required")
		os.Exit(2)
	}

	varsURL := "http://" + *addr + "/debug/vars"
	deadline := time.Now().Add(*timeout)
	var lastErr error
	for {
		v, err := fetchVars(varsURL)
		if err == nil {
			if v.Logstream.Counters == nil {
				err = fmt.Errorf("logstream expvar missing from %s", varsURL)
			} else if got := v.Logstream.Counters["stream.processed"]; got < *minProcessed {
				err = fmt.Errorf("stream.processed = %d, want >= %d", got, *minProcessed)
			} else {
				fmt.Printf("debugprobe: stream.processed=%d templates=%d\n",
					got, v.Logstream.Gauges["stream.templates"])
				break
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "debugprobe: %v\n", lastErr)
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}

	pprofURL := "http://" + *addr + "/debug/pprof/cmdline"
	resp, err := http.Get(pprofURL)
	if err != nil {
		fmt.Fprintf(os.Stderr, "debugprobe: %v\n", err)
		os.Exit(1)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "debugprobe: GET %s: status %d\n", pprofURL, resp.StatusCode)
		os.Exit(1)
	}
	fmt.Println("debugprobe: /debug/vars and /debug/pprof OK")
}
