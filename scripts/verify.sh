#!/bin/sh
# Tier-1 verification: build, vet, and race-checked tests for the whole
# module. Run from the repository root.
#
# Modes:
#
#   scripts/verify.sh          full: build + vet + race tests + telemetry
#                              invariant tests + live /debug/vars endpoint
#                              smoke + golden-digest check + crash-recovery
#                              smoke + multi-tenant server smoke +
#                              WAL and event-store crash smokes + a 5s
#                              fuzz smoke pass per fuzz target
#   scripts/verify.sh -short   fast: build + vet + `go test -short -race` +
#                              reduced crash-recovery and server smokes
#                              (skips the long-running suites and the fuzz
#                              smokes; the conformance differential matrix
#                              still runs at reduced breadth)
set -eu

cd "$(dirname "$0")/.."

short=0
case "${1:-}" in
-short | --short) short=1 ;;
"") ;;
*)
	echo "usage: scripts/verify.sh [-short]" >&2
	exit 2
	;;
esac

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

if [ "$short" = 1 ]; then
	echo "==> go test -short -race ./..."
	go test -short -race ./...
	echo "==> crash-recovery smoke (reduced)"
	sh scripts/crash_smoke.sh Zookeeper 3000 2345
	echo "==> multi-tenant server smoke (reduced)"
	sh scripts/server_smoke.sh 800 600
	echo "==> WAL crash smoke (reduced)"
	sh scripts/wal_crash_smoke.sh 3 1500
	echo "==> event-store crash smoke (reduced)"
	sh scripts/events_smoke.sh 3000 1200
	echo "verify: OK (short)"
	exit 0
fi

echo "==> go test -race ./..."
go test -race ./...

echo "==> telemetry invariants (go test -race ./internal/telemetry/...)"
go test -race ./internal/telemetry/...

echo "==> telemetry/pprof endpoint smoke (scripts/telemetry_smoke.sh)"
sh scripts/telemetry_smoke.sh

echo "==> crash-recovery smoke (scripts/crash_smoke.sh)"
sh scripts/crash_smoke.sh

echo "==> multi-tenant server smoke (scripts/server_smoke.sh)"
sh scripts/server_smoke.sh

echo "==> WAL crash smoke (scripts/wal_crash_smoke.sh)"
sh scripts/wal_crash_smoke.sh

echo "==> event-store crash smoke (scripts/events_smoke.sh)"
sh scripts/events_smoke.sh

echo "==> golden-digest check (cmd/conformgen -check)"
go run ./cmd/conformgen -check >/dev/null

# Short fuzz smoke over every native fuzz target: replays the committed
# corpora plus 5 seconds of fresh coverage-guided inputs each. A failure
# writes the crasher to internal/conform/testdata/fuzz/<target>/.
for target in FuzzTokenize FuzzTokenizeBytesEquivalence FuzzReadMessages FuzzHeaderDetect \
	FuzzParseSmallSLCT FuzzParseSmallIPLoM FuzzParseSmallLKE FuzzParseSmallLogSig \
	FuzzDrainInsert FuzzSpellLCS; do
	echo "==> go test -fuzz=$target -fuzztime=5s ./internal/conform"
	go test ./internal/conform -run '^$' -fuzz "^${target}\$" -fuzztime=5s >/dev/null
done
echo "==> go test -fuzz=FuzzWALDecode -fuzztime=5s ./internal/stream/wal"
go test ./internal/stream/wal -run '^$' -fuzz '^FuzzWALDecode$' -fuzztime=5s >/dev/null
echo "==> go test -fuzz=FuzzBlockDecode -fuzztime=5s ./internal/eventstore"
go test ./internal/eventstore -run '^$' -fuzz '^FuzzBlockDecode$' -fuzztime=5s >/dev/null

echo "verify: OK"
