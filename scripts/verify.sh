#!/bin/sh
# Tier-1 verification: build, vet, and race-checked tests for the whole
# module. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
