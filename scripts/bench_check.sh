#!/bin/sh
# Bench regression guard: take a fresh benchmark snapshot and compare it
# against the newest committed BENCH_PR*.json; fail when any benchmark's
# lines/sec dropped more than 30%.
#
#   scripts/bench_check.sh [BASELINE.json]
#
# BENCHTIME (default 3x, matching bench_snapshot.sh — the comparison is
# only meaningful when both sides ran the same protocol) trades run time
# for stability; MAX_REGRESS (default 0.30) is the tolerated fractional
# drop. A failing comparison is retried once on a second fresh snapshot
# before the guard fails, so a single noisy-neighbour run does not block
# CI. Not part of tier-1 verify — wall-clock benchmarks on shared runners
# are too machine-dependent for a merge gate there; CI runs this as its
# own job.
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-$(ls BENCH_PR*.json | sort -V | tail -1)}"
BENCHTIME="${BENCHTIME:-3x}"
MAX_REGRESS="${MAX_REGRESS:-0.30}"
export BENCHTIME

if [ ! -f "$BASELINE" ]; then
	echo "bench_check: baseline $BASELINE not found" >&2
	exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "==> bench_check: fresh snapshot vs $BASELINE (benchtime $BENCHTIME, limit -$(echo "$MAX_REGRESS" | awk '{printf "%.0f", $1*100}')%)"
LABEL="check" scripts/bench_snapshot.sh "$work/current.json"

if go run ./cmd/benchguard -baseline "$BASELINE" -current "$work/current.json" \
	-max-regress "$MAX_REGRESS"; then
	echo "bench_check: ok"
	exit 0
fi

echo "==> bench_check: regression reported; retrying once on a fresh snapshot"
LABEL="check-retry" scripts/bench_snapshot.sh "$work/retry.json"
go run ./cmd/benchguard -baseline "$BASELINE" -current "$work/retry.json" \
	-max-regress "$MAX_REGRESS"
echo "bench_check: ok (after retry)"
