#!/bin/sh
# Crash-recovery smoke: kill logstreamd at an exact stream position (a
# simulated crash writes no final checkpoint), resume it over the same
# source, and require the resumed run's canonical digest to equal an
# uninterrupted run's. A second leg tears a checkpoint write mid-stream
# (-torn-checkpoint-limit) before the kill, forcing the resumed run to fall
# back to the previous checkpoint generation — and still converge.
#
# Run from the repository root (scripts/verify.sh does). Exits non-zero on
# any divergence.
set -eu

cd "$(dirname "$0")/.."

DATASET="${1:-Zookeeper}"
LINES="${2:-5000}"
KILL="${3:-2345}"

# The torn leg tears the third checkpoint save; the kill must land after it
# (checkpoints every 700 lines) or there is nothing to fall back from.
if [ "$KILL" -le 2100 ] || [ "$LINES" -le "$KILL" ]; then
	echo "crash_smoke: KILL must be in (2100, LINES)" >&2
	exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "==> building logstreamd"
go build -o "$work/logstreamd" ./cmd/logstreamd

common="-dataset $DATASET -lines $LINES -checkpoint-every 700 -retrain-batch 64 -stats=false"

echo "==> uninterrupted run ($DATASET, $LINES lines)"
want="$("$work/logstreamd" $common -checkpoint-dir "$work/clean" -digest)"

echo "==> crash run (kill after line $KILL, no checkpoint)"
status=0
"$work/logstreamd" $common -checkpoint-dir "$work/crash" -kill-after-lines "$KILL" || status=$?
if [ "$status" != 3 ]; then
	echo "crash_smoke: FAIL: simulated crash exited $status, want 3" >&2
	exit 1
fi

echo "==> resumed run"
got="$("$work/logstreamd" $common -checkpoint-dir "$work/crash" -digest)"
if [ "$got" != "$want" ]; then
	echo "crash_smoke: FAIL: resumed digest $got != uninterrupted $want" >&2
	exit 1
fi

echo "==> torn-checkpoint crash run (third checkpoint save torn at 50 bytes)"
status=0
"$work/logstreamd" $common -checkpoint-dir "$work/torn" \
	-torn-checkpoint-at 3 -kill-after-lines "$KILL" || status=$?
if [ "$status" != 3 ]; then
	echo "crash_smoke: FAIL: torn crash exited $status, want 3" >&2
	exit 1
fi

echo "==> resumed run after torn checkpoint (expect fallback to previous generation)"
got="$("$work/logstreamd" $common -checkpoint-dir "$work/torn" -digest 2>"$work/torn.log")"
if ! grep -q "restored previous checkpoint generation" "$work/torn.log"; then
	# The tear lands inside the very first generation only when the kill
	# precedes the second save; with these defaults it never does, so a
	# missing fallback means the detection failed.
	echo "crash_smoke: FAIL: resumed run did not fall back to the previous generation:" >&2
	cat "$work/torn.log" >&2
	exit 1
fi
if [ "$got" != "$want" ]; then
	echo "crash_smoke: FAIL: torn-recovery digest $got != uninterrupted $want" >&2
	exit 1
fi

echo "crash_smoke: OK (digest $want)"
