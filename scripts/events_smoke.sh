#!/bin/sh
# Event-store crash smoke: the no-finalized-loss contract, end to end
# through the CLIs. Run logstreamd with -events over a generated dataset,
# kill it mid-stream (exit 3, no final checkpoint), query the crash-scarred
# store read-only, resume over the same directories, and require:
#
#   1. the resumed digest equals an uninterrupted run's digest (recording
#      never perturbs parsing);
#   2. logquery's unbounded count over the recovered store equals the
#      engine's matched counter exactly (the store is a faithful history,
#      crash and realign included);
#   3. the store's top template count survives a template-restricted,
#      skip-scanning query.
#
#   scripts/events_smoke.sh [LINES] [KILL]    defaults 6000 / 2500
#
# Run from the repository root (scripts/verify.sh does).
set -eu

cd "$(dirname "$0")/.."

LINES="${1:-6000}"
KILL="${2:-2500}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "==> building logstreamd + logquery"
go build -o "$work/" ./cmd/logstreamd ./cmd/logquery

run() { # run CKPT EVENTS EXTRA... -> digest on stdout, stats in $work/stats
	ck="$1"; ev="$2"; shift 2
	"$work/logstreamd" -dataset HDFS -lines "$LINES" -seed 7 \
		-checkpoint-dir "$ck" -events "$ev" -events-block-bytes 8192 \
		-checkpoint-every 500 -digest "$@" 2>"$work/stats"
}

matched_of() {
	grep -o 'matched=[0-9]*' "$work/stats" | head -n1 | cut -d= -f2
}

echo "==> uninterrupted reference run"
want="$(run "$work/ref_ck" "$work/ref_ev")"
want_matched="$(matched_of)"
[ -n "$want" ] || { echo "events_smoke: FAIL: empty reference digest" >&2; exit 1; }
ref_count="$("$work/logquery" -dir "$work/ref_ev" -stats=false)"
if [ "$ref_count" != "$want_matched" ]; then
	echo "events_smoke: FAIL: reference store counts $ref_count events, engine matched $want_matched" >&2
	exit 1
fi

echo "==> crash run (kill after line $KILL)"
if run "$work/ck" "$work/ev" -kill-after-lines "$KILL"; then
	echo "events_smoke: FAIL: crash run exited 0" >&2
	exit 1
elif [ "$?" != 3 ]; then
	echo "events_smoke: FAIL: crash run exited $? (want 3)" >&2
	exit 1
fi

# The torn store must still answer read-only queries (verified prefix).
"$work/logquery" -dir "$work/ev" -stats=false >/dev/null || {
	echo "events_smoke: FAIL: logquery cannot read the crash-scarred store" >&2
	exit 1
}

echo "==> resume over the same directories"
got="$(run "$work/ck" "$work/ev")"
got_matched="$(matched_of)"
if [ "$got" != "$want" ]; then
	echo "events_smoke: FAIL: resumed digest $got, want $want" >&2
	exit 1
fi
count="$("$work/logquery" -dir "$work/ev" -stats=false)"
if [ "$count" != "$got_matched" ]; then
	echo "events_smoke: FAIL: recovered store counts $count events, engine matched $got_matched" >&2
	exit 1
fi

# Skip-scan sanity: the top template's count survives a template-restricted
# query (which may skip blocks) and matches the full top listing.
top="$("$work/logquery" -dir "$work/ev" -mode top -n 1 -stats=false)"
top_id="$(echo "$top" | awk '{print $2}')"
top_count="$(echo "$top" | awk '{print $1}')"
sel="$("$work/logquery" -dir "$work/ev" -template "$top_id" -stats=false)"
if [ "$sel" != "$top_count" ]; then
	echo "events_smoke: FAIL: template $top_id counts $sel selected vs $top_count in top listing" >&2
	exit 1
fi

echo "events_smoke: OK (digest $got, $count events, top template $top_id x$top_count)"
