#!/bin/sh
# Multi-tenant server smoke: start logstreamd -listen, ingest two tenants
# over HTTP, kill -9 the whole process mid-stream, restart over the same
# checkpoint root, replay both streams, and require every tenant's digest
# to equal an uninterrupted run's. A final leg exercises the graceful path:
# SIGTERM must drain, checkpoint every tenant, exit 0 — and a restarted
# server must materialize both tenants from disk at their final offsets.
#
#   scripts/server_smoke.sh [LINES_A] [LINES_B]    defaults 1500 / 1200
#
# Run from the repository root (scripts/verify.sh does). Exits non-zero on
# any divergence.
set -eu

cd "$(dirname "$0")/.."

LINES_A="${1:-1500}"
LINES_B="${2:-1200}"

work="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> building logstreamd"
go build -o "$work/logstreamd" ./cmd/logstreamd

# Two deterministic, distinct tenant streams.
awk -v n="$LINES_A" 'BEGIN { for (i = 1; i <= n; i++)
	printf "connection from 10.0.%d.%d port %d\n", i % 7, i % 50, 1000 + i % 100 }' >"$work/a.log"
awk -v n="$LINES_B" 'BEGIN { for (i = 1; i <= n; i++)
	printf "block blk_%d replicated to %d nodes\n", i * 7919 % 100000, 1 + i % 3 }' >"$work/b.log"

# start_server ROOT: launches the daemon on an ephemeral port and sets
# $server_pid and $addr.
start_server() {
	rm -f "$work/addr"
	"$work/logstreamd" -listen 127.0.0.1:0 -listen-addr-file "$work/addr" \
		-checkpoint-dir "$1" -shards 2 -checkpoint-every 200 -retrain-batch 64 \
		>"$work/server.out" 2>"$work/server.err" &
	server_pid=$!
	for _ in $(seq 1 100); do
		[ -s "$work/addr" ] && break
		sleep 0.05
	done
	[ -s "$work/addr" ] || { echo "server_smoke: FAIL: server never bound" >&2; cat "$work/server.err" >&2; exit 1; }
	addr="$(head -n1 "$work/addr")"
}

post() { # post TENANT FILE
	code="$(curl -s -o "$work/post.out" -w '%{http_code}' --data-binary @"$2" \
		"http://$addr/v1/ingest?tenant=$1")"
	if [ "$code" != 200 ]; then
		echo "server_smoke: FAIL: ingest $1 returned HTTP $code:" >&2
		cat "$work/post.out" >&2
		exit 1
	fi
}

offset_of() { # offset_of TENANT
	curl -s "http://$addr/v1/tenants/$1/stats" | grep -o '"Offset":[0-9]*' | head -n1 | cut -d: -f2
}

digest_of() { # digest_of TENANT
	curl -s "http://$addr/v1/tenants/$1/stats" | grep -o '"digest":"[^"]*"' | cut -d'"' -f4
}

wait_offset() { # wait_offset TENANT N
	for _ in $(seq 1 200); do
		[ "$(offset_of "$1")" = "$2" ] && return 0
		sleep 0.05
	done
	echo "server_smoke: FAIL: tenant $1 stuck at offset $(offset_of "$1"), want $2" >&2
	exit 1
}

echo "==> uninterrupted reference run"
start_server "$work/ref"
post a "$work/a.log"
post b "$work/b.log"
wait_offset a "$LINES_A"
wait_offset b "$LINES_B"
want_a="$(digest_of a)"
want_b="$(digest_of b)"
kill -9 "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
[ -n "$want_a" ] && [ -n "$want_b" ] || { echo "server_smoke: FAIL: empty reference digest" >&2; exit 1; }

echo "==> partial ingest, then kill -9 mid-stream"
start_server "$work/live"
head -n 1000 "$work/a.log" >"$work/a.part"
head -n 800 "$work/b.log" >"$work/b.part"
post a "$work/a.part"
post b "$work/b.part"
# Let some periodic checkpoints land, then pull the plug with lines still
# in flight — everything after each tenant's last checkpoint must be
# recovered by replay, not by luck.
sleep 0.4
kill -9 "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "==> restart over the same root, replay both streams"
start_server "$work/live"
post a "$work/a.log"
post b "$work/b.log"
wait_offset a "$LINES_A"
wait_offset b "$LINES_B"
got_a="$(digest_of a)"
got_b="$(digest_of b)"
if [ "$got_a" != "$want_a" ] || [ "$got_b" != "$want_b" ]; then
	echo "server_smoke: FAIL: resumed digests diverged:" >&2
	echo "  tenant a: $got_a want $want_a" >&2
	echo "  tenant b: $got_b want $want_b" >&2
	exit 1
fi

echo "==> graceful shutdown (SIGTERM must drain + checkpoint + exit 0)"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" != 0 ]; then
	echo "server_smoke: FAIL: graceful shutdown exited $status:" >&2
	cat "$work/server.err" >&2
	exit 1
fi
grep -q "drained" "$work/server.err" || {
	echo "server_smoke: FAIL: no drain confirmation on stderr:" >&2
	cat "$work/server.err" >&2
	exit 1
}

echo "==> restart after graceful shutdown: tenants materialize from disk"
start_server "$work/live"
off_a="$(offset_of a)"
off_b="$(offset_of b)"
if [ "$off_a" != "$LINES_A" ] || [ "$off_b" != "$LINES_B" ]; then
	echo "server_smoke: FAIL: restored offsets a=$off_a b=$off_b, want $LINES_A/$LINES_B" >&2
	exit 1
fi
if [ "$(digest_of a)" != "$want_a" ] || [ "$(digest_of b)" != "$want_b" ]; then
	echo "server_smoke: FAIL: digests changed across a graceful restart" >&2
	exit 1
fi
kill -9 "$server_pid" 2>/dev/null || true
server_pid=""

echo "server_smoke: OK (a=$want_a b=$want_b)"
