// Command logstreamd runs the crash-safe streaming ingestion engine over a
// log file or a generated dataset, checkpointing its state so a killed
// process resumes where it durably left off.
//
// Tail a file with checkpoints every 5000 lines:
//
//	logstreamd -in app.log -checkpoint-dir /var/lib/logstream
//
// Replay a generated dataset and print the canonical digest (the quantity
// the kill-and-recover tests compare):
//
//	logstreamd -dataset Zookeeper -lines 20000 -checkpoint-dir ck -digest
//
// Simulate a crash at an exact stream position, then resume:
//
//	logstreamd -dataset HDFS -lines 30000 -checkpoint-dir ck -kill-after-lines 12345
//	logstreamd -dataset HDFS -lines 30000 -checkpoint-dir ck -digest
//
// The first invocation exits with code 3 (simulated crash, no final
// checkpoint); the second restores the newest trustworthy checkpoint and
// finishes the stream. SIGINT is a graceful shutdown: the engine stops and
// writes a final checkpoint before exiting.
//
// Fault injection: -eof-after-lines truncates the source mid-stream (clean
// EOF; the engine checkpoints and a later run completes the job) and
// -torn-checkpoint-at N tears the Nth checkpoint save after
// -torn-checkpoint-limit bytes, modelling data lost between write and fsync
// — a resumed run detects the damage and falls back to the previous
// checkpoint generation.
//
// Network mode: -listen promotes the daemon to the sharded multi-tenant
// ingestion server. Tenants POST newline-delimited lines and each gets its
// own engine, quota, and checkpoint directory under -checkpoint-dir:
//
//	logstreamd -listen :8080 -checkpoint-dir /var/lib/logstream -shards 8
//	curl -s --data-binary @app.log 'http://localhost:8080/v1/ingest?tenant=web'
//	curl -s http://localhost:8080/v1/tenants/web/stats
//
// SIGINT/SIGTERM drain gracefully in both modes: admitted lines are
// processed and every tenant's closing checkpoint is written before exit.
// A killed process (SIGKILL, power cut) instead resumes from the newest
// trustworthy checkpoints, and clients replay their streams — already-
// processed lines are skipped, so replay is idempotent.
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"logparse"
	"logparse/internal/faultinject"
	"logparse/internal/server"
	"logparse/internal/stream"
)

const crashExitCode = 3

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "logstreamd:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		in      = flag.String("in", "", "log file to ingest (annotated or raw lines)")
		dataset = flag.String("dataset", "", "generate this dataset instead of reading -in (BGL, HPC, Proxifier, HDFS, Zookeeper, Hadoop, Spark, Thunderbird)")
		lines   = flag.Int("lines", 20000, "dataset size when -dataset is set")
		seed    = flag.Int64("seed", 1, "dataset generation seed")

		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory (required)")
		ckptEvery = flag.Int("checkpoint-every", 5000, "checkpoint after this many processed lines (<0 disables periodic checkpoints)")
		ring      = flag.Int("ring", 1024, "admission ring capacity (memory bound on in-flight lines)")
		policy    = flag.String("policy", "backpressure", "admission policy when the ring is full: backpressure or shed")

		retrainBatch = flag.Int("retrain-batch", 256, "unmatched lines buffered before retraining")
		maxUnmatched = flag.Int("max-unmatched", 0, "unmatched-buffer cap (default 4x retrain batch)")
		primary      = flag.String("retrainer", "", "primary retrain algorithm ahead of the SLCT-stream tier (SLCT, IPLoM, LKE, LogSig; empty = SLCT-stream only)")
		support      = flag.Int("support", 0, "SLCT support threshold for retraining (0 = fractional default)")
		online       = flag.String("online", "", "online-parser mode: learn per line with this algorithm (Drain or Spell) instead of the match/retrain cycle; exclusive with -retrainer")

		eventsDir   = flag.String("events", "", "record per-line parse decisions into this event-store directory (file mode) or root (-listen mode: tenant T under <root>/tenants/T); query with logquery or GET /v1/query")
		eventsBlock = flag.Int("events-block-bytes", 0, "event-store target block size in bytes (0 = default 256 KiB); smaller blocks skip more precisely, larger compress better")

		killAfter = flag.Int64("kill-after-lines", 0, "simulate a crash (exit 3, no checkpoint) after processing this source line")
		eofAfter  = flag.Int("eof-after-lines", 0, "inject a premature clean EOF after this many source lines")
		tornAt    = flag.Int("torn-checkpoint-at", 0, "tear the Nth checkpoint save (fault injection; 0 = never)")
		tornLimit = flag.Int64("torn-checkpoint-limit", 50, "bytes that survive the torn checkpoint save")

		digest    = flag.Bool("digest", false, "print the canonical digest of the final template set and counts")
		showStats = flag.Bool("stats", true, "print the stats summary on exit")

		listen         = flag.String("listen", "", "serve the multi-tenant ingest API on this address (e.g. :8080); replaces -in/-dataset")
		listenAddrFile = flag.String("listen-addr-file", "", "write the bound listen address to this file (useful with -listen :0)")
		shards         = flag.Int("shards", 4, "fault-isolation shards tenants are hashed across (-listen mode)")
		quotaRate      = flag.Float64("quota-rate", 0, "per-tenant admission quota in lines/sec (0 = unlimited; -listen mode)")
		quotaBurst     = flag.Float64("quota-burst", 0, "per-tenant quota burst in lines (default one second's worth; -listen mode)")
		maxBody        = flag.Int64("max-body", 1<<20, "ingest request body cap in bytes (-listen mode)")
		reqTimeout     = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (-listen mode)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline: drain rings + checkpoint every tenant (-listen mode)")
		walOn          = flag.Bool("wal", false, "per-tenant write-ahead log: acknowledged batches survive kill -9 without client replay (-listen mode)")
		walSync        = flag.String("wal-sync", "batch", "WAL durability policy: batch (one fsync per acknowledged batch) or none (flush only; survives process kill, not power loss)")
		walSegBytes    = flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation threshold in bytes")

		debugAddr     = flag.String("debug-addr", "", "serve /debug/vars (stream.* metrics) and /debug/pprof on this address (e.g. :6060; empty = off)")
		debugAddrFile = flag.String("debug-addr-file", "", "write the bound debug address to this file (useful with -debug-addr :0)")
		linger        = flag.Bool("linger", false, "after the source drains, keep the debug server running until SIGINT")
	)
	flag.Parse()

	if *ckptDir == "" {
		return 2, errors.New("-checkpoint-dir is required")
	}
	if *listen != "" {
		if *in != "" || *dataset != "" {
			return 2, errors.New("-listen is exclusive with -in/-dataset")
		}
		if *online != "" && *primary != "" {
			return 2, errors.New("-online is exclusive with -retrainer")
		}
		return runServer(serverOpts{
			listen: *listen, addrFile: *listenAddrFile, ckptRoot: *ckptDir,
			shards: *shards, quotaRate: *quotaRate, quotaBurst: *quotaBurst,
			maxBody: *maxBody, reqTimeout: *reqTimeout, drainTimeout: *drainTimeout,
			ring: *ring, ckptEvery: *ckptEvery, retrainBatch: *retrainBatch,
			maxUnmatched: *maxUnmatched, policy: *policy,
			primary: *primary, support: *support, seed: *seed, online: *online,
			wal: *walOn, walSync: *walSync, walSegBytes: *walSegBytes,
			eventsRoot: *eventsDir, eventsBlock: *eventsBlock,
			debugAddr: *debugAddr, debugAddrFile: *debugAddrFile,
		})
	}
	if (*in == "") == (*dataset == "") {
		return 2, errors.New("exactly one of -in or -dataset is required")
	}

	open, err := buildSource(*in, *dataset, *lines, *seed, *eofAfter)
	if err != nil {
		return 2, err
	}

	var pol stream.AdmissionPolicy
	switch *policy {
	case "backpressure":
		pol = stream.Backpressure
	case "shed":
		pol = stream.LoadShed
	default:
		return 2, fmt.Errorf("unknown -policy %q (want backpressure or shed)", *policy)
	}

	var retrainer stream.Retrainer
	var onlineParser stream.OnlineParser
	if *online != "" {
		if *primary != "" {
			return 2, errors.New("-online is exclusive with -retrainer")
		}
		onlineParser, err = logparse.NewOnlineParser(*online, logparse.Options{})
		if err != nil {
			return 2, err
		}
	} else {
		retrainer, err = logparse.NewStreamRetrainer(*primary,
			logparse.Options{Support: *support, SupportFrac: 0.005, NumGroups: 40, Seed: *seed},
			logparse.RobustPolicy{})
		if err != nil {
			return 2, err
		}
	}

	var tel *logparse.Telemetry
	if *debugAddr != "" {
		tel = logparse.NewTelemetry()
		if err := serveDebug(*debugAddr, *debugAddrFile, tel); err != nil {
			return 1, err
		}
	}

	cfg := stream.Config{
		Open:            open,
		CheckpointDir:   *ckptDir,
		RingCapacity:    *ring,
		Policy:          pol,
		CheckpointEvery: *ckptEvery,
		RetrainBatch:    *retrainBatch,
		MaxUnmatched:    *maxUnmatched,
		Retrainer:       retrainer,
		Online:          onlineParser,
		Telemetry:       tel,

		EventStoreDir:        *eventsDir,
		EventStoreBlockBytes: *eventsBlock,
	}
	if *tornAt > 0 {
		saves := 0
		cfg.CheckpointWrap = func(w io.Writer) io.Writer {
			saves++
			if saves == *tornAt {
				return faultinject.NewTornWriter(w, *tornLimit)
			}
			return w
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crashed := false
	if *killAfter > 0 {
		cfg.AfterLine = func(lineNo int64) {
			if lineNo == *killAfter {
				crashed = true
				cancel()
			}
		}
	}

	eng, err := stream.New(cfg)
	if err != nil {
		return 1, err
	}
	if from := eng.Stats().RecoveredFrom; from != "" {
		fmt.Fprintf(os.Stderr, "logstreamd: restored %s checkpoint generation (offset %d)\n",
			from, eng.Stats().Offset)
	}

	// SIGINT/SIGTERM request a graceful stop: the producer stops pulling,
	// every admitted line drains through the matcher, and only then is the
	// closing checkpoint written — no admitted line is lost to a shutdown.
	// A second signal hard-cancels (the crash model, no checkpoint).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	interrupted := false
	sigDone := make(chan struct{})
	go func() {
		if _, ok := <-sigCh; ok {
			interrupted = true
			eng.Stop()
			close(sigDone)
			if _, ok := <-sigCh; ok {
				cancel()
			}
		}
	}()

	runStart := time.Now()
	runErr := eng.Run(ctx)
	runElapsed := time.Since(runStart)
	switch {
	case runErr == nil && interrupted:
		fmt.Fprintf(os.Stderr, "logstreamd: interrupted; ring drained and state checkpointed at offset %d\n", eng.Stats().Offset)
	case runErr == nil:
		// Clean end of source; final checkpoint already written.
	case errors.Is(runErr, context.Canceled) && crashed:
		fmt.Fprintf(os.Stderr, "logstreamd: simulated crash after line %d (no checkpoint)\n", *killAfter)
		return crashExitCode, nil
	case errors.Is(runErr, context.Canceled) && interrupted:
		fmt.Fprintln(os.Stderr, "logstreamd: second signal; hard stop without checkpoint")
		return 1, runErr
	default:
		return 1, runErr
	}

	if *showStats {
		st := eng.Stats()
		printStats(os.Stderr, st)
		if secs := runElapsed.Seconds(); secs > 0 && st.Processed > 0 {
			fmt.Fprintf(os.Stderr, "logstreamd: throughput %.0f lines/sec (%d lines in %s)\n",
				float64(st.Processed)/secs, st.Processed, runElapsed.Round(time.Millisecond))
		}
	}
	if *digest {
		fmt.Println(eng.Digest())
	}
	if *linger && !interrupted && *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "logstreamd: source drained; debug server still serving (SIGINT to exit)")
		<-sigDone
	}
	return 0, nil
}

// serverOpts carries the -listen mode flags into runServer.
type serverOpts struct {
	listen, addrFile, ckptRoot string

	shards       int
	quotaRate    float64
	quotaBurst   float64
	maxBody      int64
	reqTimeout   time.Duration
	drainTimeout time.Duration

	ring, ckptEvery, retrainBatch, maxUnmatched int
	policy, primary, online                     string
	support                                     int
	seed                                        int64

	wal         bool
	walSync     string
	walSegBytes int64

	eventsRoot  string
	eventsBlock int

	debugAddr, debugAddrFile string
}

// newRetrainerFactory builds the per-tenant retrainer factory, or nil when
// -online replaces the retrain cycle entirely.
func newRetrainerFactory(o serverOpts) func(tenant string) (stream.Retrainer, error) {
	if o.online != "" {
		return nil
	}
	return func(tenant string) (stream.Retrainer, error) {
		return logparse.NewStreamRetrainer(o.primary,
			logparse.Options{Support: o.support, SupportFrac: 0.005, NumGroups: 40, Seed: o.seed},
			logparse.RobustPolicy{})
	}
}

// newOnlineFactory builds the per-tenant online-learner factory for -online
// mode (each tenant engine gets its own learner instance), or nil in the
// default match/retrain mode.
func newOnlineFactory(o serverOpts) func(tenant string) (stream.OnlineParser, error) {
	if o.online == "" {
		return nil
	}
	return func(tenant string) (stream.OnlineParser, error) {
		return logparse.NewOnlineParser(o.online, logparse.Options{})
	}
}

// runServer runs the sharded multi-tenant ingest service until SIGINT or
// SIGTERM, then drains: admission stops, every tenant's ring empties, and
// every tenant's closing checkpoint is written before exit.
func runServer(o serverOpts) (int, error) {
	var pol stream.AdmissionPolicy
	switch o.policy {
	case "backpressure":
		pol = stream.Backpressure
	case "shed":
		pol = stream.LoadShed
	default:
		return 2, fmt.Errorf("unknown -policy %q (want backpressure or shed)", o.policy)
	}

	var sync stream.WALSyncPolicy
	switch o.walSync {
	case "", "batch":
		sync = stream.WALSyncBatch
	case "none":
		sync = stream.WALSyncNone
	default:
		return 2, fmt.Errorf("unknown -wal-sync %q (want batch or none)", o.walSync)
	}

	var tel *logparse.Telemetry
	if o.debugAddr != "" {
		tel = logparse.NewTelemetry()
		if err := serveDebug(o.debugAddr, o.debugAddrFile, tel); err != nil {
			return 1, err
		}
	}

	srv, err := server.New(server.Config{
		CheckpointRoot:  o.ckptRoot,
		Shards:          o.shards,
		WAL:             o.wal,
		EventsRoot:      o.eventsRoot,
		EventBlockBytes: o.eventsBlock,
		Stream: stream.Config{
			RingCapacity:    o.ring,
			Policy:          pol,
			CheckpointEvery: o.ckptEvery,
			RetrainBatch:    o.retrainBatch,
			MaxUnmatched:    o.maxUnmatched,
			WALSync:         sync,
			WALSegmentBytes: o.walSegBytes,
		},
		NewRetrainer: newRetrainerFactory(o),
		NewOnline:    newOnlineFactory(o),
		QuotaRate:      o.quotaRate,
		QuotaBurst:     o.quotaBurst,
		MaxBodyBytes:   o.maxBody,
		RequestTimeout: o.reqTimeout,
		Telemetry:      tel,
	})
	if err != nil {
		return 1, err
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return 1, fmt.Errorf("listen: %w", err)
	}
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return 1, err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "logstreamd: multi-tenant ingest on http://%s/v1/ingest (%d shards)\n",
		ln.Addr(), o.shards)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "logstreamd: %s; draining %d tenants (deadline %s)\n",
			sig, srv.Stats().Tenants, o.drainTimeout)
	case err := <-serveErr:
		return 1, fmt.Errorf("http server: %w", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Drain the engines first so in-flight ingest requests get their typed
	// 503s rather than hard-closed connections, then stop the HTTP server.
	drainErr := srv.Shutdown(drainCtx)
	_ = httpSrv.Shutdown(drainCtx)
	if drainErr != nil {
		return 1, fmt.Errorf("drain: %w", drainErr)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "logstreamd: drained; %d tenants checkpointed (accepted=%d skipped=%d shed=%d quota-rejected=%d)\n",
		st.Tenants, st.Accepted, st.Skipped, st.Shed, st.QuotaRejected)
	return 0, nil
}

// serveDebug binds addr, publishes the telemetry handle as the expvar
// "logstream" variable and serves /debug/vars plus /debug/pprof on the
// default mux in the background. When addrFile is set, the bound address is
// written there, so scripts can use "-debug-addr :0" and discover the port.
func serveDebug(addr, addrFile string, tel *logparse.Telemetry) error {
	expvar.Publish("logstream", tel.Var())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "logstreamd: debug server on http://%s/debug/vars\n", ln.Addr())
	go func() {
		// The server lives for the process: ignore the shutdown error.
		_ = http.Serve(ln, nil)
	}()
	return nil
}

// buildSource returns a re-openable reader over the input file or an
// in-memory generated dataset, optionally wrapped with a premature-EOF
// fault.
func buildSource(in, dataset string, lines int, seed int64, eofAfter int) (func() (io.ReadCloser, error), error) {
	var open func() (io.ReadCloser, error)
	if in != "" {
		open = func() (io.ReadCloser, error) { return os.Open(in) }
	} else {
		cat, err := logparse.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := logparse.WriteMessages(&buf, cat.Generate(seed, lines)); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		open = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}
	}
	if eofAfter > 0 {
		inner := open
		open = func() (io.ReadCloser, error) {
			rc, err := inner()
			if err != nil {
				return nil, err
			}
			return struct {
				io.Reader
				io.Closer
			}{faultinject.NewReader(rc, faultinject.Faults{EOFAfterLines: eofAfter}), rc}, nil
		}
	}
	return open, nil
}

func printStats(w io.Writer, s stream.Stats) {
	fmt.Fprintf(w, "lines-in=%d processed=%d matched=%d unparsed=%d empty=%d shed=%d oversized=%d\n",
		s.LinesIn, s.Processed, s.Matched, s.Unparsed, s.Empty, s.Shed, s.Oversized)
	fmt.Fprintf(w, "templates=%d retrains=%d retrain-failures=%d breaker=%s unmatched-buffered=%d unmatched-dropped=%d\n",
		s.Templates, s.Retrains, s.RetrainFailures, s.Breaker, s.UnmatchedBuffered, s.UnmatchedDropped)
	fmt.Fprintf(w, "offset=%d checkpoints=%d checkpoint-errors=%d ring-high-water=%d recovered-from=%q\n",
		s.Offset, s.Checkpoints, s.CheckpointErrors, s.RingHighWater, s.RecoveredFrom)
	if s.EventStoreEnabled {
		fmt.Fprintf(w, "events=%d event-segments=%d event-blocks=%d event-torn-tails=%d event-error=%q\n",
			s.EventsAppended, s.EventStoreSegments, s.EventStoreBlocks, s.EventStoreTornTails, s.EventStoreError)
	}
}
