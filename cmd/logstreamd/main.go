// Command logstreamd runs the crash-safe streaming ingestion engine over a
// log file or a generated dataset, checkpointing its state so a killed
// process resumes where it durably left off.
//
// Tail a file with checkpoints every 5000 lines:
//
//	logstreamd -in app.log -checkpoint-dir /var/lib/logstream
//
// Replay a generated dataset and print the canonical digest (the quantity
// the kill-and-recover tests compare):
//
//	logstreamd -dataset Zookeeper -lines 20000 -checkpoint-dir ck -digest
//
// Simulate a crash at an exact stream position, then resume:
//
//	logstreamd -dataset HDFS -lines 30000 -checkpoint-dir ck -kill-after-lines 12345
//	logstreamd -dataset HDFS -lines 30000 -checkpoint-dir ck -digest
//
// The first invocation exits with code 3 (simulated crash, no final
// checkpoint); the second restores the newest trustworthy checkpoint and
// finishes the stream. SIGINT is a graceful shutdown: the engine stops and
// writes a final checkpoint before exiting.
//
// Fault injection: -eof-after-lines truncates the source mid-stream (clean
// EOF; the engine checkpoints and a later run completes the job) and
// -torn-checkpoint-at N tears the Nth checkpoint save after
// -torn-checkpoint-limit bytes, modelling data lost between write and fsync
// — a resumed run detects the damage and falls back to the previous
// checkpoint generation.
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"

	"logparse"
	"logparse/internal/faultinject"
	"logparse/internal/stream"
)

const crashExitCode = 3

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "logstreamd:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		in      = flag.String("in", "", "log file to ingest (annotated or raw lines)")
		dataset = flag.String("dataset", "", "generate this dataset instead of reading -in (BGL, HPC, Proxifier, HDFS, Zookeeper)")
		lines   = flag.Int("lines", 20000, "dataset size when -dataset is set")
		seed    = flag.Int64("seed", 1, "dataset generation seed")

		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint directory (required)")
		ckptEvery = flag.Int("checkpoint-every", 5000, "checkpoint after this many processed lines (<0 disables periodic checkpoints)")
		ring      = flag.Int("ring", 1024, "admission ring capacity (memory bound on in-flight lines)")
		policy    = flag.String("policy", "backpressure", "admission policy when the ring is full: backpressure or shed")

		retrainBatch = flag.Int("retrain-batch", 256, "unmatched lines buffered before retraining")
		maxUnmatched = flag.Int("max-unmatched", 0, "unmatched-buffer cap (default 4x retrain batch)")
		primary      = flag.String("retrainer", "", "primary retrain algorithm ahead of the SLCT-stream tier (SLCT, IPLoM, LKE, LogSig; empty = SLCT-stream only)")
		support      = flag.Int("support", 0, "SLCT support threshold for retraining (0 = fractional default)")

		killAfter = flag.Int64("kill-after-lines", 0, "simulate a crash (exit 3, no checkpoint) after processing this source line")
		eofAfter  = flag.Int("eof-after-lines", 0, "inject a premature clean EOF after this many source lines")
		tornAt    = flag.Int("torn-checkpoint-at", 0, "tear the Nth checkpoint save (fault injection; 0 = never)")
		tornLimit = flag.Int64("torn-checkpoint-limit", 50, "bytes that survive the torn checkpoint save")

		digest    = flag.Bool("digest", false, "print the canonical digest of the final template set and counts")
		showStats = flag.Bool("stats", true, "print the stats summary on exit")

		debugAddr     = flag.String("debug-addr", "", "serve /debug/vars (stream.* metrics) and /debug/pprof on this address (e.g. :6060; empty = off)")
		debugAddrFile = flag.String("debug-addr-file", "", "write the bound debug address to this file (useful with -debug-addr :0)")
		linger        = flag.Bool("linger", false, "after the source drains, keep the debug server running until SIGINT")
	)
	flag.Parse()

	if *ckptDir == "" {
		return 2, errors.New("-checkpoint-dir is required")
	}
	if (*in == "") == (*dataset == "") {
		return 2, errors.New("exactly one of -in or -dataset is required")
	}

	open, err := buildSource(*in, *dataset, *lines, *seed, *eofAfter)
	if err != nil {
		return 2, err
	}

	var pol stream.AdmissionPolicy
	switch *policy {
	case "backpressure":
		pol = stream.Backpressure
	case "shed":
		pol = stream.LoadShed
	default:
		return 2, fmt.Errorf("unknown -policy %q (want backpressure or shed)", *policy)
	}

	retrainer, err := logparse.NewStreamRetrainer(*primary,
		logparse.Options{Support: *support, SupportFrac: 0.005, NumGroups: 40, Seed: *seed},
		logparse.RobustPolicy{})
	if err != nil {
		return 2, err
	}

	var tel *logparse.Telemetry
	if *debugAddr != "" {
		tel = logparse.NewTelemetry()
		if err := serveDebug(*debugAddr, *debugAddrFile, tel); err != nil {
			return 1, err
		}
	}

	cfg := stream.Config{
		Open:            open,
		CheckpointDir:   *ckptDir,
		RingCapacity:    *ring,
		Policy:          pol,
		CheckpointEvery: *ckptEvery,
		RetrainBatch:    *retrainBatch,
		MaxUnmatched:    *maxUnmatched,
		Retrainer:       retrainer,
		Telemetry:       tel,
	}
	if *tornAt > 0 {
		saves := 0
		cfg.CheckpointWrap = func(w io.Writer) io.Writer {
			saves++
			if saves == *tornAt {
				return faultinject.NewTornWriter(w, *tornLimit)
			}
			return w
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crashed := false
	if *killAfter > 0 {
		cfg.AfterLine = func(lineNo int64) {
			if lineNo == *killAfter {
				crashed = true
				cancel()
			}
		}
	}

	eng, err := stream.New(cfg)
	if err != nil {
		return 1, err
	}
	if from := eng.Stats().RecoveredFrom; from != "" {
		fmt.Fprintf(os.Stderr, "logstreamd: restored %s checkpoint generation (offset %d)\n",
			from, eng.Stats().Offset)
	}

	// SIGINT/SIGTERM stop the run; unlike a simulated crash, the state is
	// then checkpointed before exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	interrupted := false
	sigDone := make(chan struct{})
	go func() {
		if _, ok := <-sigCh; ok {
			interrupted = true
			cancel()
			close(sigDone)
		}
	}()

	runErr := eng.Run(ctx)
	switch {
	case runErr == nil:
		// Clean end of source; final checkpoint already written.
	case errors.Is(runErr, context.Canceled) && crashed:
		fmt.Fprintf(os.Stderr, "logstreamd: simulated crash after line %d (no checkpoint)\n", *killAfter)
		return crashExitCode, nil
	case errors.Is(runErr, context.Canceled) && interrupted:
		if err := eng.Checkpoint(); err != nil {
			return 1, fmt.Errorf("interrupted; final checkpoint failed: %w", err)
		}
		fmt.Fprintf(os.Stderr, "logstreamd: interrupted; state checkpointed at offset %d\n", eng.Stats().Offset)
	default:
		return 1, runErr
	}

	if *showStats {
		printStats(os.Stderr, eng.Stats())
	}
	if *digest {
		fmt.Println(eng.Digest())
	}
	if *linger && !interrupted && *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "logstreamd: source drained; debug server still serving (SIGINT to exit)")
		<-sigDone
	}
	return 0, nil
}

// serveDebug binds addr, publishes the telemetry handle as the expvar
// "logstream" variable and serves /debug/vars plus /debug/pprof on the
// default mux in the background. When addrFile is set, the bound address is
// written there, so scripts can use "-debug-addr :0" and discover the port.
func serveDebug(addr, addrFile string, tel *logparse.Telemetry) error {
	expvar.Publish("logstream", tel.Var())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "logstreamd: debug server on http://%s/debug/vars\n", ln.Addr())
	go func() {
		// The server lives for the process: ignore the shutdown error.
		_ = http.Serve(ln, nil)
	}()
	return nil
}

// buildSource returns a re-openable reader over the input file or an
// in-memory generated dataset, optionally wrapped with a premature-EOF
// fault.
func buildSource(in, dataset string, lines int, seed int64, eofAfter int) (func() (io.ReadCloser, error), error) {
	var open func() (io.ReadCloser, error)
	if in != "" {
		open = func() (io.ReadCloser, error) { return os.Open(in) }
	} else {
		cat, err := logparse.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := logparse.WriteMessages(&buf, cat.Generate(seed, lines)); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		open = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}
	}
	if eofAfter > 0 {
		inner := open
		open = func() (io.ReadCloser, error) {
			rc, err := inner()
			if err != nil {
				return nil, err
			}
			return struct {
				io.Reader
				io.Closer
			}{faultinject.NewReader(rc, faultinject.Faults{EOFAfterLines: eofAfter}), rc}, nil
		}
	}
	return open, nil
}

func printStats(w io.Writer, s stream.Stats) {
	fmt.Fprintf(w, "lines-in=%d processed=%d matched=%d unparsed=%d empty=%d shed=%d oversized=%d\n",
		s.LinesIn, s.Processed, s.Matched, s.Unparsed, s.Empty, s.Shed, s.Oversized)
	fmt.Fprintf(w, "templates=%d retrains=%d retrain-failures=%d breaker=%s unmatched-buffered=%d unmatched-dropped=%d\n",
		s.Templates, s.Retrains, s.RetrainFailures, s.Breaker, s.UnmatchedBuffered, s.UnmatchedDropped)
	fmt.Fprintf(w, "offset=%d checkpoints=%d checkpoint-errors=%d ring-high-water=%d recovered-from=%q\n",
		s.Offset, s.Checkpoints, s.CheckpointErrors, s.RingHighWater, s.RecoveredFrom)
}
