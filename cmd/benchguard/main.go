// Command benchguard compares a fresh benchjson snapshot against a
// committed baseline and fails when throughput regressed: any benchmark
// present in both documents whose guarded metric (default lines/sec, where
// higher is better) dropped by more than the allowed fraction exits
// non-zero, as does a baseline benchmark missing from the current run —
// silently deleting a benchmark must not pass the guard.
//
//	benchguard -baseline BENCH_PR7.json -current fresh.json -max-regress 0.30
//
// Benchmarks without the guarded metric (alloc-only microbenches) are
// ignored. Improvements are reported but never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Label      string      `json:"label,omitempty"`
	Commit     string      `json:"commit,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func load(path string) (document, error) {
	var doc document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed snapshot to guard against (required)")
	current := flag.String("current", "", "fresh snapshot from scripts/bench_snapshot.sh (required)")
	metric := flag.String("metric", "lines/sec", "higher-is-better metric to guard")
	maxRegress := flag.Float64("max-regress", 0.30, "largest tolerated fractional drop, e.g. 0.30 = 30%")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	curByName := make(map[string]benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	failed := false
	compared := 0
	for _, b := range base.Benchmarks {
		want, ok := b.Metrics[*metric]
		if !ok || want <= 0 {
			continue
		}
		cb, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: present in %s (%s) but missing from current run\n",
				b.Name, *baseline, base.Label)
			failed = true
			continue
		}
		got, ok := cb.Metrics[*metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: current run lost the %q metric\n", b.Name, *metric)
			failed = true
			continue
		}
		compared++
		change := (got - want) / want
		switch {
		case change < -*maxRegress:
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %s %.0f -> %.0f (%.1f%%, limit -%.0f%%)\n",
				b.Name, *metric, want, got, change*100, *maxRegress*100)
			failed = true
		default:
			fmt.Printf("benchguard: ok   %s: %s %.0f -> %.0f (%+.1f%%)\n",
				b.Name, *metric, want, got, change*100)
		}
	}
	if compared == 0 && !failed {
		fmt.Fprintf(os.Stderr, "benchguard: no benchmark in %s carries the %q metric\n", *baseline, *metric)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks within -%.0f%% of %s (%s)\n",
		compared, *maxRegress*100, *baseline, base.Label)
}
