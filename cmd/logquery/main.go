// Command logquery answers questions about a parsed-event store without
// touching the engine that wrote it: which templates fired, how often,
// and when. It reads the block footers' time ranges, bloom filters and
// per-template indexes to skip — or answer entirely without decompressing
// — every block the query cannot select from, so a narrow query over a
// large store reads almost none of it.
//
// Count one template's events inside a time window:
//
//	logquery -dir events -template 7 -from 2026-08-08T00:00:00Z -to 2026-08-08T01:00:00Z
//
// The most frequent templates, with names resolved from the engine's
// checkpoint:
//
//	logquery -dir events -mode top -n 10 -checkpoint-dir ck
//
// List matching events (store order, seq = source line number):
//
//	logquery -dir events -mode list -template 3,9 -limit 50
//
// Query one tenant of a -listen server started with -events ROOT:
//
//	logquery -root ROOT -tenant web -mode top
//
// The store is read-only here: crash damage (a torn tail under a live
// writer, a corrupt block) is tolerated and reported, never repaired —
// the verified prefix is served. Exit status: 0 on success, 1 on error,
// 2 on usage.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"logparse/internal/eventstore"
	"logparse/internal/stream"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "logquery:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// result is the -json output document; exactly one of Count, Events,
// Templates is set, per mode.
type result struct {
	Dir       string                `json:"dir"`
	Mode      string                `json:"mode"`
	Count     *int64                `json:"count,omitempty"`
	Events    []eventRow            `json:"events,omitempty"`
	Templates []templateRow         `json:"templates,omitempty"`
	Stats     eventstore.QueryStats `json:"stats"`
	Store     storeInfo             `json:"store"`
}

type eventRow struct {
	Seq      int64  `json:"seq"`
	Time     string `json:"time"`
	Template int32  `json:"template"`
	Name     string `json:"name,omitempty"`
	Kind     string `json:"kind"`
	RawOff   int64  `json:"raw_off,omitempty"`
}

type templateRow struct {
	Template int32  `json:"template"`
	Count    int64  `json:"count"`
	Name     string `json:"name,omitempty"`
}

type storeInfo struct {
	Segments int    `json:"segments"`
	Blocks   int    `json:"blocks"`
	Events   int64  `json:"events"`
	LastSeq  int64  `json:"last_seq"`
	TornTail bool   `json:"torn_tail,omitempty"`
	Damaged  string `json:"damaged,omitempty"`
}

func run() (int, error) {
	var (
		dir    = flag.String("dir", "", "event store directory (exclusive with -root/-tenant)")
		root   = flag.String("root", "", "server events root; use with -tenant")
		tenant = flag.String("tenant", "", "tenant id under -root")

		mode      = flag.String("mode", "count", "count, top (most frequent templates) or list (the events themselves)")
		templates = flag.String("template", "", "comma-separated template ids to select (empty = all matched)")
		unmatched = flag.Bool("unmatched", false, "include unmatched lines (template -1)")
		from      = flag.String("from", "", "lower time bound, RFC3339 (inclusive)")
		to        = flag.String("to", "", "upper time bound, RFC3339 (exclusive)")
		limit     = flag.Int("limit", 100, "list mode: maximum events returned")
		topN      = flag.Int("n", 10, "top mode: number of templates")

		ckptDir   = flag.String("checkpoint-dir", "", "engine checkpoint directory; resolves template ids to names")
		jsonOut   = flag.Bool("json", false, "emit the result as one JSON document")
		showStats = flag.Bool("stats", true, "print skip-scan effectiveness to stderr (text mode)")
	)
	flag.Parse()

	switch {
	case *dir != "" && (*root != "" || *tenant != ""):
		return 2, errors.New("-dir is exclusive with -root/-tenant")
	case *dir == "" && (*root == "") != (*tenant == ""):
		return 2, errors.New("-root and -tenant go together")
	case *dir == "" && *root == "":
		return 2, errors.New("a store is required: -dir DIR, or -root ROOT -tenant ID")
	}
	storeDir := *dir
	if storeDir == "" {
		storeDir = filepath.Join(*root, "tenants", *tenant)
	}
	if _, err := os.Stat(storeDir); err != nil {
		return 1, fmt.Errorf("event store %s: %w", storeDir, err)
	}

	q := eventstore.Query{IncludeUnmatched: *unmatched}
	if *templates != "" {
		for _, part := range strings.Split(*templates, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return 2, fmt.Errorf("bad -template entry %q", part)
			}
			q.TemplateIDs = append(q.TemplateIDs, int32(id))
		}
	}
	for _, bound := range []struct {
		flag, name string
		dst        *time.Time
	}{{*from, "-from", &q.From}, {*to, "-to", &q.To}} {
		if bound.flag == "" {
			continue
		}
		ts, err := time.Parse(time.RFC3339Nano, bound.flag)
		if err != nil {
			return 2, fmt.Errorf("%s: want RFC3339: %w", bound.name, err)
		}
		*bound.dst = ts
	}

	names, err := loadTemplateNames(*ckptDir)
	if err != nil {
		return 1, err
	}

	rd, info, err := eventstore.OpenReader(storeDir, eventstore.ReaderOptions{})
	if err != nil {
		return 1, err
	}
	res := result{
		Dir:  storeDir,
		Mode: *mode,
		Store: storeInfo{
			Segments: info.Segments, Blocks: info.Blocks, Events: info.Events,
			LastSeq: info.LastSeq, TornTail: info.TornTail, Damaged: info.Damaged,
		},
	}

	switch *mode {
	case "count":
		n, st, err := rd.Count(q)
		if err != nil {
			return 1, err
		}
		res.Count, res.Stats = &n, st
	case "top":
		if *topN <= 0 {
			return 2, errors.New("-n must be positive")
		}
		counts, st, err := rd.TemplateCounts(q)
		if err != nil {
			return 1, err
		}
		res.Stats = st
		for id, c := range counts {
			res.Templates = append(res.Templates, templateRow{Template: id, Count: c, Name: names[id]})
		}
		sort.Slice(res.Templates, func(i, j int) bool {
			if res.Templates[i].Count != res.Templates[j].Count {
				return res.Templates[i].Count > res.Templates[j].Count
			}
			return res.Templates[i].Template < res.Templates[j].Template
		})
		if len(res.Templates) > *topN {
			res.Templates = res.Templates[:*topN]
		}
	case "list":
		if *limit <= 0 {
			return 2, errors.New("-limit must be positive")
		}
		q.Limit = *limit
		st, err := rd.Scan(q, func(ev eventstore.Event) error {
			res.Events = append(res.Events, eventRow{
				Seq:      ev.Seq,
				Time:     time.Unix(0, ev.Time).UTC().Format(time.RFC3339Nano),
				Template: ev.Template,
				Name:     names[ev.Template],
				Kind:     ev.Kind.String(),
				RawOff:   ev.RawOff,
			})
			return nil
		})
		if err != nil {
			return 1, err
		}
		res.Stats = st
	default:
		return 2, fmt.Errorf("unknown -mode %q (want count, top or list)", *mode)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return 0, enc.Encode(res)
	}
	printText(res, *showStats)
	return 0, nil
}

// loadTemplateNames maps template ids to rendered templates from the
// engine's checkpoint. The event store records the matcher's template
// index, which is the checkpoint's template order — the same engine wrote
// both, under the same checkpoint barrier.
func loadTemplateNames(ckptDir string) (map[int32]string, error) {
	if ckptDir == "" {
		return nil, nil
	}
	store, err := stream.NewStore(ckptDir)
	if err != nil {
		return nil, err
	}
	st, _, err := store.Load()
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", ckptDir, err)
	}
	names := make(map[int32]string, len(st.Templates))
	for i, t := range st.Templates {
		names[int32(i)] = strings.Join(t.Tokens, " ")
	}
	return names, nil
}

func printText(res result, showStats bool) {
	if res.Store.TornTail {
		fmt.Fprintln(os.Stderr, "logquery: note: newest segment ends mid-block (live writer or crash); serving the finalized prefix")
	}
	if res.Store.Damaged != "" {
		fmt.Fprintf(os.Stderr, "logquery: note: damage past the verified prefix: %s\n", res.Store.Damaged)
	}
	switch res.Mode {
	case "count":
		fmt.Println(*res.Count)
	case "top":
		for _, row := range res.Templates {
			label := row.Name
			if label == "" {
				if row.Template == -1 {
					label = "(unmatched)"
				} else {
					label = "template " + strconv.Itoa(int(row.Template))
				}
			}
			fmt.Printf("%10d  %4d  %s\n", row.Count, row.Template, label)
		}
	case "list":
		for _, ev := range res.Events {
			label := ev.Name
			if label == "" {
				label = ev.Kind
			} else {
				label += "  [" + ev.Kind + "]"
			}
			fmt.Printf("%10d  %s  %4d  %s\n", ev.Seq, ev.Time, ev.Template, label)
		}
	}
	if showStats {
		st := res.Stats
		fmt.Fprintf(os.Stderr,
			"logquery: %d events selected; %d/%d blocks skipped, %d answered from the index, %d decompressed (%d bytes)\n",
			st.Selected, st.Skipped, st.Blocks, st.IndexOnly, st.Decompressed, st.BytesDecompressed)
	}
}
