// Command conformgen maintains the conformance golden corpora under
// internal/conform/testdata/golden: frozen SHA-256 digests of canonicalized
// parses (plus the template lists behind them) for every cell of the
// conformance matrix.
//
// Modes:
//
//	conformgen            regenerate every golden file in place
//	conformgen -check     recompute and compare without writing; exit 1 on drift
//	conformgen -measure   print the measured F-measures per cell (the data
//	                      behind the floors table in internal/conform)
//
// Golden updates must be a deliberate, reviewed diff: a changed digest
// means parser (or generator) behavior changed, which is exactly what the
// golden regression test exists to catch. See DESIGN.md, "Correctness
// harness".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"logparse/internal/conform"
)

const goldenAlgSeed = 1

func main() {
	out := flag.String("out", "internal/conform/testdata/golden", "golden corpus directory")
	check := flag.Bool("check", false, "compare against the committed goldens without writing")
	measure := flag.Bool("measure", false, "print measured F-measures per conformance cell")
	flag.Parse()

	if *measure {
		if err := runMeasure(); err != nil {
			fmt.Fprintln(os.Stderr, "conformgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *check); err != nil {
		fmt.Fprintln(os.Stderr, "conformgen:", err)
		os.Exit(1)
	}
}

func run(dir string, check bool) error {
	if !check {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	drifted := 0
	for _, c := range conform.Cases() {
		fresh, err := conform.ComputeGolden(c, goldenAlgSeed)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fresh.Filename())
		if check {
			data, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("read %s: %w", path, err)
			}
			frozen, err := conform.DecodeGolden(data)
			if err != nil {
				return err
			}
			if err := frozen.Compare(fresh); err != nil {
				fmt.Fprintln(os.Stderr, err)
				drifted++
				continue
			}
			fmt.Printf("ok  %-22s %d templates\n", fresh.Filename(), len(fresh.Templates))
			continue
		}
		if err := os.WriteFile(path, fresh.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d templates, digest %.12s…)\n", path, len(fresh.Templates), fresh.ResultDigest)
	}
	if drifted > 0 {
		return fmt.Errorf("%d golden file(s) drifted", drifted)
	}
	return nil
}

// runMeasure prints, per cell, the pairwise F-measure of the serial parse
// (for two algorithm seeds) and of the 4-shard parallel parse — the
// measurements the floors in internal/conform are derived from (measured
// value minus a safety margin).
func runMeasure() error {
	for _, c := range conform.Cases() {
		factory, err := c.Factory()
		if err != nil {
			return err
		}
		msgs := c.Messages()
		fs := make([]float64, 0, 2)
		for _, seed := range []int64{1, 2} {
			res, err := factory(seed).Parse(msgs)
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", c.Name(), seed, err)
			}
			f, err := conform.FMeasureAgainstTruth(res, msgs)
			if err != nil {
				return err
			}
			fs = append(fs, f)
		}
		pp, err := c.ParallelParser(4, 1)
		if err != nil {
			return err
		}
		pres, err := pp.Parse(msgs)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", c.Name(), err)
		}
		pf, err := conform.FMeasureAgainstTruth(pres, msgs)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s n=%-4d F(seed1)=%.4f F(seed2)=%.4f F(parallel4)=%.4f\n",
			c.Name(), c.N, fs[0], fs[1], pf)
	}
	return nil
}
