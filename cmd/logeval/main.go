// Command logeval runs the paper's RQ1/RQ2 experiments and prints each
// table or figure in the paper's layout.
//
//	logeval -table1                 # Table I: dataset summary
//	logeval -table2 -sample 2000    # Table II: parsing accuracy raw/preprocessed
//	logeval -fig2 -max-size 40000   # Fig. 2: running time vs volume
//	logeval -fig3                   # Fig. 3: accuracy vs volume, frozen params
//	logeval -tune -dataset BGL      # Finding 4: parameter grid search
//
// Select datasets with -dataset (default: all five).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"logparse/internal/experiments"
	"logparse/internal/gen"
	"logparse/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "logeval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table1  = flag.Bool("table1", false, "print Table I (dataset summary)")
		table2  = flag.Bool("table2", false, "run Table II (parsing accuracy)")
		fig2    = flag.Bool("fig2", false, "run Fig. 2 (efficiency)")
		fig3    = flag.Bool("fig3", false, "run Fig. 3 (accuracy vs volume)")
		tune    = flag.Bool("tune", false, "run the Finding 4 parameter grid search")
		dataset = flag.String("dataset", "", "restrict to one dataset (default all)")
		sample  = flag.Int("sample", 2000, "Table II sample size")
		runs    = flag.Int("runs", 3, "repetitions for randomised parsers (paper: 10)")
		seed    = flag.Int64("seed", 42, "dataset generation seed")
		maxSize = flag.Int("max-size", 40000, "largest size in Fig. 2/3 sweeps")
		plot    = flag.Bool("plot", false, "render Fig. 2 panels as ASCII log-log charts")
		parsers = flag.String("parsers", "", "comma-separated parser subset for -fig2/-fig3 (default all)")
		report  = flag.String("report", "", "write a JSON run report (stage timings, spans, metrics) to this file (- = stderr)")
	)
	flag.Parse()
	if !*table1 && !*table2 && !*fig2 && !*fig3 && !*tune {
		flag.Usage()
		return fmt.Errorf("select at least one of -table1, -table2, -fig2, -fig3, -tune")
	}

	var tel *telemetry.Handle
	if *report != "" {
		tel = telemetry.New()
	}
	opts := experiments.Options{Sample: *sample, Runs: *runs, Seed: *seed, Telemetry: tel}
	datasets := gen.Names
	if *dataset != "" {
		datasets = []string{*dataset}
	}
	parserList := experiments.ParserNames
	if *parsers != "" {
		parserList = strings.Split(*parsers, ",")
	}

	if *table1 {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println("Table I: Summary of System Log Datasets (full-scale sizes)")
		experiments.FormatTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *table2 {
		cells, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Println("Table II: Parsing Accuracy (raw/preprocessed)")
		experiments.FormatTable2(os.Stdout, cells)
		fmt.Println()
	}
	if *fig2 {
		sizes := experiments.Fig2Sizes(*maxSize)
		for _, d := range datasets {
			points, err := experiments.Fig2Parsers(d, parserList, sizes, opts)
			if err != nil {
				return err
			}
			experiments.FormatFig2(os.Stdout, d, points)
			if *plot {
				experiments.PlotFig2(os.Stdout, d, points)
			}
			fmt.Println()
		}
	}
	if *fig3 {
		sizes := experiments.Fig2Sizes(*maxSize)
		for _, d := range datasets {
			rows, err := experiments.Fig3Parsers(d, parserList, sizes, opts)
			if err != nil {
				return err
			}
			experiments.FormatFig3(os.Stdout, d, rows, sizes)
			fmt.Println()
		}
	}
	if *tune {
		for _, d := range datasets {
			trials, best, err := experiments.TuneSLCT(d, *sample, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("Tuning SLCT support fraction on %s (%d-line sample):\n", d, *sample)
			for _, t := range trials {
				fmt.Printf("  frac=%-7g F=%.3f\n", t.Param, t.F)
			}
			fmt.Printf("  best: %g\n", best)
			trials, bestK, err := experiments.TuneLogSigK(d, *sample, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("Tuning LogSig k on %s:\n", d)
			for _, t := range trials {
				fmt.Printf("  k=%-4.0f F=%.3f\n", t.Param, t.F)
			}
			fmt.Printf("  best: %.0f\n", bestK)
		}
	}
	if *report != "" {
		out := io.Writer(os.Stderr)
		if *report != "-" {
			f, err := os.Create(*report)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := tel.Report("logeval").WriteJSON(out); err != nil {
			return err
		}
	}
	return nil
}
