// Command logparse parses a log file with one of the six algorithms and
// writes the toolkit's two standard outputs (§II-C, Fig. 1): a log-events
// file listing the extracted templates and a structured-log file mapping
// every input line to an event.
//
//	logparse -in hdfs.log -parser IPLoM -events events.txt -structured structured.txt
//
// When the input carries ground-truth annotations (loggen's format), the
// parse is also scored with the pairwise F-measure.
//
// For production-style runs, -timeout, -retries and -fallback wrap the
// parse in the fault-tolerant degradation chain (panics isolated, deadline
// enforced, transient failures retried, fallback algorithms tried in
// order), and -strict rejects corrupt input lines instead of skipping them.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"logparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "logparse:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "input log file (required)")
		parserName = flag.String("parser", "IPLoM", "algorithm: SLCT, IPLoM, LKE, LogSig, Drain, Spell")
		events     = flag.String("events", "", "log events output file (default stdout)")
		structured = flag.String("structured", "", "structured log output file (omit to skip)")
		maxLines   = flag.Int("max-lines", 0, "read at most this many lines (0 = all)")
		preprocess = flag.String("preprocess", "", "apply a dataset's preprocessing rules (e.g. HDFS)")
		seed       = flag.Int64("seed", 1, "seed for randomised algorithms")
		support    = flag.Int("support", 0, "SLCT: absolute support threshold")
		frac       = flag.Float64("support-frac", 0, "SLCT: support as a fraction of input size")
		groups     = flag.Int("groups", 0, "LogSig: number of groups k")
		threshold  = flag.Float64("threshold", 0, "LKE: merge threshold (0 = automatic)")
		depth      = flag.Int("depth", 0, "Drain: prefix-tree depth (0 = default 4)")
		simTh      = flag.Float64("sim-threshold", 0, "Drain: leaf similarity threshold (0 = default 0.4)")
		maxKids    = flag.Int("max-children", 0, "Drain: per-node fan-out cap (0 = default 100)")
		tau        = flag.Float64("tau", 0, "Spell: LCS acceptance threshold (0 = default 0.5)")
		stream     = flag.Bool("stream", false, "SLCT only: two-pass streaming parse with bounded memory")
		epsilon    = flag.Float64("epsilon", 0, "streaming: lossy-counting error bound for the vocabulary pass (0 = exact)")
		timeout    = flag.Duration("timeout", 0, "per-tier parse deadline (0 = none); enables the fault-tolerant wrapper")
		retries    = flag.Int("retries", 0, "retry a tier this many times on transient failures before degrading")
		fallback   = flag.String("fallback", "", "comma-separated fallback algorithms tried in order when the primary fails (e.g. IPLoM,SLCT)")
		strict     = flag.Bool("strict", false, "fail on corrupt/ambiguous/over-long input lines instead of skipping and counting them")
		report     = flag.String("report", "", "write a JSON run report (stage timings, spans, metrics) to this file (- = stderr)")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	if *stream {
		return runStream(*in, *parserName, *events, *structured, *support, *frac, *epsilon)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	msgs, stats, err := logparse.ReadMessagesOpts(f, logparse.ReadOptions{
		MaxLines: *maxLines,
		Strict:   *strict,
	})
	if err != nil {
		return err
	}
	if stats.Corrupt+stats.Ambiguous+stats.Oversized > 0 {
		fmt.Fprintf(os.Stderr, "logparse: tolerated %d corrupt, %d ambiguous, %d over-long lines\n",
			stats.Corrupt, stats.Ambiguous, stats.Oversized)
	}
	if len(msgs) == 0 {
		return fmt.Errorf("no log messages in %s", *in)
	}
	if *preprocess != "" {
		msgs = logparse.Preprocess(*preprocess, msgs)
	}

	var tel *logparse.Telemetry
	if *report != "" {
		tel = logparse.NewTelemetry()
	}
	opts := logparse.Options{
		Seed:         *seed,
		Support:      *support,
		SupportFrac:  *frac,
		NumGroups:    *groups,
		Threshold:    *threshold,
		Depth:        *depth,
		SimThreshold: *simTh,
		MaxChildren:  *maxKids,
		Tau:          *tau,
		Telemetry:    tel,
	}
	parser, err := logparse.NewParser(*parserName, opts)
	if err != nil {
		return err
	}

	servedBy := parser.Name()
	var result *logparse.Result
	if *timeout > 0 || *retries > 0 || *fallback != "" {
		algorithms := []string{*parserName}
		for _, a := range strings.Split(*fallback, ",") {
			if a = strings.TrimSpace(a); a != "" {
				algorithms = append(algorithms, a)
			}
		}
		chain, err := logparse.NewRobustParser(algorithms, opts,
			logparse.RobustPolicy{Timeout: *timeout, MaxRetries: *retries, Telemetry: tel})
		if err != nil {
			return err
		}
		var att *logparse.ParseAttribution
		result, att, err = chain.ParseAttributed(context.Background(), msgs)
		if err != nil {
			return err
		}
		servedBy = att.TierName
		if att.Degraded {
			fmt.Fprintf(os.Stderr, "logparse: primary failed, served by fallback tier %d (%s) after %d failed attempts\n",
				att.Tier, att.TierName, len(att.Attempts))
			for _, a := range att.Attempts {
				fmt.Fprintf(os.Stderr, "logparse:   tier %d (%s): %v\n", a.Tier, a.TierName, a.Err)
			}
		} else if att.Retries > 0 {
			fmt.Fprintf(os.Stderr, "logparse: served by %s after %d transient retries\n", att.TierName, att.Retries)
		}
	} else {
		result, err = parser.Parse(msgs)
		if err != nil {
			return err
		}
	}

	eventsOut := os.Stdout
	if *events != "" {
		ef, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer ef.Close()
		eventsOut = ef
	}
	if err := logparse.WriteEvents(eventsOut, result); err != nil {
		return err
	}
	if *structured != "" {
		sf, err := os.Create(*structured)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := logparse.WriteStructured(sf, msgs, result); err != nil {
			return err
		}
	}

	counts, outliers := result.EventCounts()
	fmt.Fprintf(os.Stderr, "logparse: %s extracted %d events from %d lines (%d outliers)\n",
		servedBy, len(counts), len(msgs), outliers)
	if msgs[0].TruthID != "" {
		acc, err := logparse.EvaluateResult(msgs, result)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "logparse: accuracy vs ground truth: %s\n", acc)
	}
	if *report != "" {
		if err := writeReport(tel, "logparse", *report); err != nil {
			return err
		}
	}
	return nil
}

// writeReport emits the telemetry run report as JSON to path ("-" = stderr,
// keeping stdout free for the events output).
func writeReport(tel *logparse.Telemetry, tool, path string) error {
	out := io.Writer(os.Stderr)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return tel.Report(tool).WriteJSON(out)
}

// runStream runs the bounded-memory two-pass SLCT over a file on disk.
func runStream(in, parserName, events, structured string, support int, frac, epsilon float64) error {
	if parserName != "SLCT" {
		return fmt.Errorf("-stream is only implemented for SLCT (two single-scan passes); got %q", parserName)
	}
	open := func() (io.ReadCloser, error) { return os.Open(in) }
	res, err := logparse.ParseStreamSLCT(open, logparse.Options{Support: support, SupportFrac: frac}, epsilon)
	if err != nil {
		return err
	}
	eventsOut := os.Stdout
	if events != "" {
		ef, err := os.Create(events)
		if err != nil {
			return err
		}
		defer ef.Close()
		eventsOut = ef
	}
	for _, t := range res.Templates {
		fmt.Fprintf(eventsOut, "%s\t%s\n", t.ID, t)
	}
	if structured != "" {
		sf, err := os.Create(structured)
		if err != nil {
			return err
		}
		defer sf.Close()
		for i, a := range res.Assignment {
			id := "-"
			if a >= 0 {
				id = res.Templates[a].ID
			}
			fmt.Fprintf(sf, "%d\t%s\n", i+1, id)
		}
	}
	outliers := 0
	for _, a := range res.Assignment {
		if a < 0 {
			outliers++
		}
	}
	fmt.Fprintf(os.Stderr, "logparse: streaming SLCT extracted %d events from %d lines (%d outliers)\n",
		len(res.Templates), res.Lines, outliers)
	return nil
}
