// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark snapshots (BENCH_*.json)
// can be committed and diffed across PRs.
//
//	go test -run '^$' -bench . ./internal/stream | benchjson -label stream
//
// Each benchmark line contributes its name, iteration count, and every
// "value unit" metric pair (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units like lines/sec or ckpt-B/op). Non-benchmark lines
// are ignored, so raw `go test` output can be piped straight through.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Label      string      `json:"label,omitempty"`
	Commit     string      `json:"commit,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "snapshot label recorded in the document")
	commit := flag.String("commit", "", "source commit recorded in the document")
	flag.Parse()

	doc := document{
		Label:     *label,
		Commit:    *commit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine recognizes one `go test -bench` result line:
//
//	BenchmarkName-8   12   345 ns/op   67 B/op   8 allocs/op   90.1 lines/sec
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	// Strip only the exact -GOMAXPROCS suffix the testing package appends;
	// anything else ("-5000" in a sub-benchmark name) is part of the name.
	b := benchmark{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return benchmark{}, false
	}
	return b, true
}
