// Command loganomaly runs the paper's RQ3 experiment (Table III): PCA-based
// anomaly detection on a session-structured HDFS log, once per log parser
// plus the ground-truth parse, and reports reported/detected/false-alarm
// counts.
//
//	loganomaly -sessions 8000
//
// The paper's full scale (575,061 sessions, 16,838 anomalies) is reachable
// with -sessions 575061; ratios are stable across scales.
package main

import (
	"flag"
	"fmt"
	"os"

	"logparse/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loganomaly:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sessions = flag.Int("sessions", 8000, "number of HDFS block sessions")
		rate     = flag.Float64("rate", 0, "anomalous fraction (default: paper's 16838/575061)")
		seed     = flag.Int64("seed", 11, "generation seed")
	)
	flag.Parse()

	reports, err := experiments.Table3(experiments.Table3Options{
		Sessions:    *sessions,
		AnomalyRate: *rate,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	total := 0
	if len(reports) > 0 {
		total = reports[0].TotalAnomalies
	}
	fmt.Printf("Table III: Anomaly Detection with Different Log Parsing Methods (%d anomalies)\n", total)
	experiments.FormatTable3(os.Stdout, reports)
	return nil
}
