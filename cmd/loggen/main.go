// Command loggen generates the toolkit's synthetic evaluation datasets.
//
// Line-oriented datasets (BGL, HPC, Proxifier, HDFS, Zookeeper):
//
//	loggen -dataset BGL -lines 100000 -out bgl.log
//
// Session-structured HDFS with labelled anomalies (for anomaly detection):
//
//	loggen -dataset HDFS -sessions 10000 -rate 0.029 -out hdfs.log -labels hdfs.labels
//
// Output lines are tab-separated "truthID<TAB>session<TAB>content", the
// annotated format every tool in this module reads; the labels file lists
// "blockID<TAB>anomalous".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"logparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset  = flag.String("dataset", "HDFS", "dataset name (BGL, HPC, Proxifier, HDFS, Zookeeper, Hadoop, Spark, Thunderbird)")
		lines    = flag.Int("lines", 10000, "number of log lines (line-oriented mode)")
		sessions = flag.Int("sessions", 0, "number of HDFS block sessions (session mode; HDFS only)")
		rate     = flag.Float64("rate", 0.0293, "anomalous session fraction (session mode)")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "", "output file (default stdout)")
		labels   = flag.String("labels", "", "labels output file (session mode)")
		list     = flag.Bool("list", false, "list datasets with their Table I summary and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range logparse.Datasets() {
			s, err := logparse.SummarizeDataset(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s full-size=%-9d events=%-4d length=%d~%d\n",
				s.System, s.NumLogs, s.NumEvents, s.MinLength, s.MaxLength)
		}
		return nil
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *sessions > 0 {
		if *dataset != "HDFS" {
			return fmt.Errorf("session mode is only available for HDFS, got %q", *dataset)
		}
		data, err := logparse.GenerateHDFSSessions(logparse.HDFSSessionOptions{
			Seed: *seed, Sessions: *sessions, AnomalyRate: *rate,
		})
		if err != nil {
			return err
		}
		if err := logparse.WriteMessages(w, data.Messages); err != nil {
			return err
		}
		if *labels != "" {
			if err := writeLabels(*labels, data.Labels); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "loggen: %d lines, %d sessions, %d anomalies\n",
			len(data.Messages), *sessions, data.NumAnomalies())
		return nil
	}

	cat, err := logparse.Dataset(*dataset)
	if err != nil {
		return err
	}
	msgs := cat.Generate(*seed, *lines)
	if err := logparse.WriteMessages(w, msgs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loggen: %d lines of %s\n", len(msgs), cat.Name)
	return nil
}

func writeLabels(path string, labels map[string]bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := bw.WriteString(k + "\t" + strconv.FormatBool(labels[k]) + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
