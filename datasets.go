package logparse

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"logparse/internal/core"
	"logparse/internal/gen"
	"logparse/internal/header"
	"logparse/internal/tokenize"
)

// Catalog is a synthetic dataset: a catalogue of ground-truth templates
// with realistic popularity skew. Generate draws labelled log messages.
type Catalog = gen.Catalog

// HDFSSessions is a session-structured HDFS log with labelled anomalies.
type HDFSSessions = gen.HDFSData

// HDFSSessionOptions configures session-structured HDFS generation.
type HDFSSessionOptions = gen.HDFSOptions

// DatasetSummary is one row of the paper's Table I.
type DatasetSummary = gen.Summary

// Datasets lists the built-in dataset names: the paper's five (BGL, HPC,
// Proxifier, HDFS, Zookeeper) followed by the extended set (Hadoop,
// Spark, Thunderbird).
func Datasets() []string { return gen.AllNames() }

// Dataset returns a built-in dataset catalogue by name.
func Dataset(name string) (*Catalog, error) { return gen.ByName(name) }

// SummarizeDataset returns the Table I row of a dataset.
func SummarizeDataset(name string) (DatasetSummary, error) { return gen.Summarize(name) }

// GenerateHDFSSessions builds the session-structured HDFS log used in the
// anomaly-detection study, with exact anomaly labels.
func GenerateHDFSSessions(opts HDFSSessionOptions) (*HDFSSessions, error) {
	return gen.GenerateHDFSSessions(opts)
}

// GroundTruthResult builds the exactly-correct parse of labelled messages
// (one template per ground-truth event), the "Ground truth" row of
// Table III.
func GroundTruthResult(msgs []Message) *Result { return gen.TruthResult(msgs) }

// Preprocess applies a dataset's domain-knowledge preprocessing rules
// (§IV-B: IP/block-ID/core-ID masking) to messages, returning a rewritten
// copy. Unknown dataset names apply no rules.
func Preprocess(dataset string, msgs []Message) []Message {
	return tokenize.ForDataset(dataset).Apply(msgs)
}

// RenderRawLines renders messages as full raw log lines with realistic
// per-dataset headers (timestamp, node, severity, component) — the form
// production systems actually write. Timestamps advance monotonically from
// start with small jitter. Use StripHeader (or logparse -strip) to recover
// message content.
func RenderRawLines(dataset string, msgs []Message, seed int64, start time.Time) ([]string, error) {
	f, ok := header.ForDataset(dataset)
	if !ok {
		return nil, fmt.Errorf("logparse: no header format for dataset %q", dataset)
	}
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, len(msgs))
	ts := start
	for i, m := range msgs {
		ts = ts.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
		lines[i] = f.Render(m.Content, ts, rng)
	}
	return lines, nil
}

// StripHeader removes a dataset's header fields from one raw line,
// returning the free-text message content the parsers consume.
func StripHeader(dataset, line string) (string, error) {
	f, ok := header.ForDataset(dataset)
	if !ok {
		return "", fmt.Errorf("logparse: no header format for dataset %q", dataset)
	}
	return f.Strip(line), nil
}

// ReadMessages reads raw or ground-truth-annotated log lines; maxLines ≤ 0
// reads everything.
func ReadMessages(r io.Reader, maxLines int) ([]Message, error) {
	return core.ReadMessages(r, maxLines)
}

// Input-hardening knobs for reading real-world (possibly corrupt) logs; see
// ReadMessagesOpts.
type (
	// ReadOptions selects the line format, strict/lenient handling of
	// corrupt lines, and the per-line size cap.
	ReadOptions = core.ReadOptions
	// ReadStats reports how many corrupt, ambiguous and oversized lines a
	// lenient read tolerated.
	ReadStats = core.ReadStats
	// CorruptLineError is the typed error strict reads fail with.
	CorruptLineError = core.CorruptLineError
)

// Line-format constants for ReadOptions.Format.
const (
	FormatAuto      = core.FormatAuto
	FormatPlain     = core.FormatPlain
	FormatAnnotated = core.FormatAnnotated
)

// ReadMessagesOpts reads log lines under explicit format, strictness and
// line-size policies. Unlike ReadMessages it survives over-long lines
// (truncating or skipping them instead of aborting the read) and reports
// how many corrupt, ambiguous and oversized lines were tolerated.
func ReadMessagesOpts(r io.Reader, opts ReadOptions) ([]Message, ReadStats, error) {
	return core.ReadMessagesOpts(r, opts)
}

// WriteMessages writes messages in the annotated dataset format
// ReadMessages accepts.
func WriteMessages(w io.Writer, msgs []Message) error { return core.WriteMessages(w, msgs) }

// WriteEvents writes a parse result's log-events file (Fig. 1's left
// output).
func WriteEvents(w io.Writer, r *Result) error { return core.WriteEvents(w, r) }

// WriteStructured writes the structured-log file (Fig. 1's right output).
func WriteStructured(w io.Writer, msgs []Message, r *Result) error {
	return core.WriteStructured(w, msgs, r)
}
