package logparse

// Multi-tenant ingestion service (the network layer over the streaming
// engine). The follow-up evaluations stress that production parsers run
// continuously over heterogeneous multi-source traffic; the IngestServer
// hash-shards tenants across fault-isolation domains, gives each its own
// supervised StreamEngine (admission ring, retrain breaker, checkpoint
// generations, quota), and guarantees that one tenant's flood, panic, or
// rotted checkpoint degrades that tenant only. See DESIGN.md
// "Multi-tenant server & isolation semantics".

import "logparse/internal/server"

type (
	// IngestServer is the sharded multi-tenant ingestion service.
	IngestServer = server.Server
	// IngestConfig configures an IngestServer.
	IngestConfig = server.Config
	// IngestTenantStats is one tenant's externally visible snapshot.
	IngestTenantStats = server.TenantStats
	// IngestStats is the fleet snapshot.
	IngestStats = server.Stats
	// IngestQuotaError reports a batch rejected by a tenant's admission
	// quota (HTTP 429, or 413 when the batch can never fit the bucket).
	IngestQuotaError = server.QuotaError
	// IngestTenantIDError reports a malformed tenant id (HTTP 400).
	IngestTenantIDError = server.TenantIDError
)

// Typed ingest failures shared with the HTTP layer.
var (
	// ErrIngestDraining rejects ingest during graceful shutdown (503).
	ErrIngestDraining = server.ErrDraining
	// ErrIngestTooManyTenants rejects a new tenant beyond the cap (503).
	ErrIngestTooManyTenants = server.ErrTooManyTenants
	// ErrIngestUnknownTenant reports a stats query for a tenant with no
	// live engine and no on-disk state (404).
	ErrIngestUnknownTenant = server.ErrUnknownTenant
)

// NewIngestServer builds the multi-tenant service. Tenants materialize
// lazily on first ingest, each restoring its own newest trustworthy
// checkpoint under <CheckpointRoot>/tenants/<id>/:
//
//	srv, _ := logparse.NewIngestServer(logparse.IngestConfig{
//		CheckpointRoot: "/var/lib/logstream",
//		Shards:         8,
//		QuotaRate:      10000, // lines/sec per tenant
//	})
//	http.ListenAndServe(":8080", srv.Handler())
//	// ... on SIGTERM:
//	err := srv.Shutdown(ctx) // drain rings + checkpoint every tenant
func NewIngestServer(cfg IngestConfig) (*IngestServer, error) {
	return server.New(cfg)
}
